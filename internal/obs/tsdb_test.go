package obs

import (
	"encoding/json"
	"reflect"
	"testing"
)

func TestTSDBAppendAndWindow(t *testing.T) {
	db := NewTSDB(4)
	for i := 0; i < 6; i++ {
		db.Append("q", uint64(i), float64(i*10))
	}
	// Capacity 4: points 2..5 survive, oldest first.
	want := []Point{{2, 20}, {3, 30}, {4, 40}, {5, 50}}
	if got := db.Series("q"); !reflect.DeepEqual(got, want) {
		t.Fatalf("series after wrap = %+v, want %+v", got, want)
	}
	if last, ok := db.Last("q"); !ok || last != (Point{5, 50}) {
		t.Fatalf("last = %+v %v", last, ok)
	}
	if got := db.Window("q", 2); !reflect.DeepEqual(got, []Point{{4, 40}, {5, 50}}) {
		t.Fatalf("window(2) = %+v", got)
	}
	if db.Len("q") != 4 || db.Len("missing") != 0 {
		t.Fatalf("len = %d / %d", db.Len("q"), db.Len("missing"))
	}
	if _, ok := db.Last("missing"); ok {
		t.Fatal("missing series has a last point")
	}
}

// TestTSDBAppendOrderContract pins the Append contract the fleet
// telemetry collector depends on: insertion order is preserved verbatim
// — an out-of-order timestamp is not re-sorted into place, duplicate
// timestamps are all kept as distinct points, and Last means "most
// recently appended", not "largest T". Merging producers must
// canonicalize before appending.
func TestTSDBAppendOrderContract(t *testing.T) {
	db := NewTSDB(8)
	db.Append("s", 10, 1)
	db.Append("s", 30, 3)
	db.Append("s", 20, 2) // out of order: retained as given
	db.Append("s", 30, 9) // duplicate timestamp: kept, not collapsed
	want := []Point{{10, 1}, {30, 3}, {20, 2}, {30, 9}}
	if got := db.Series("s"); !reflect.DeepEqual(got, want) {
		t.Fatalf("series = %+v, want insertion order %+v", got, want)
	}
	if last, ok := db.Last("s"); !ok || last != (Point{30, 9}) {
		t.Fatalf("Last = %+v %v, want the most recently appended point", last, ok)
	}
	// Window is a suffix of insertion order, so derived values (burn
	// rates) see arrival order too — exactly why mergers must sort and
	// dedup first.
	if got := db.Window("s", 2); !reflect.DeepEqual(got, []Point{{20, 2}, {30, 9}}) {
		t.Fatalf("window(2) = %+v", got)
	}
}

func TestTSDBNilIsNoOp(t *testing.T) {
	var db *TSDB
	db.Append("x", 1, 2)
	if db.Series("x") != nil || db.Names() != nil || db.SaveState() != nil {
		t.Fatal("nil TSDB returned data")
	}
	if err := db.RestoreState(nil); err != nil {
		t.Fatal(err)
	}
	if err := db.RestoreState(&TSDBState{}); err == nil {
		t.Fatal("restore into nil store accepted")
	}
}

func TestTSDBStateRoundTripDeterministic(t *testing.T) {
	db := NewTSDB(8)
	db.Append("b/one", 1, 1)
	db.Append("a/two", 2, 0.5)
	db.Append("b/one", 3, 0)

	st := db.SaveState()
	if got := []string{st.Series[0].Name, st.Series[1].Name}; got[0] != "a/two" || got[1] != "b/one" {
		t.Fatalf("state series not sorted: %v", got)
	}
	// Deterministic encoding: two saves are byte-identical.
	j1, _ := json.Marshal(st)
	j2, _ := json.Marshal(db.SaveState())
	if string(j1) != string(j2) {
		t.Fatal("state encoding not deterministic")
	}

	db2 := NewTSDB(8)
	db2.Append("stale", 9, 9)
	if err := db2.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	if db2.Series("stale") != nil {
		t.Fatal("restore did not replace existing series")
	}
	if !reflect.DeepEqual(db2.Series("b/one"), db.Series("b/one")) {
		t.Fatalf("restored series diverges: %+v vs %+v", db2.Series("b/one"), db.Series("b/one"))
	}
	// Appends continue where the restore left off.
	db2.Append("b/one", 4, 7)
	if last, _ := db2.Last("b/one"); last != (Point{4, 7}) {
		t.Fatalf("append after restore = %+v", last)
	}
}

func TestTSDBStateRejectsCorrupt(t *testing.T) {
	db := NewTSDB(4)
	if err := db.RestoreState(&TSDBState{Series: []TSSeriesState{{Name: ""}}}); err == nil {
		t.Fatal("unnamed series accepted")
	}
	if err := db.RestoreState(&TSDBState{Series: []TSSeriesState{{Name: "a"}, {Name: "a"}}}); err == nil {
		t.Fatal("duplicate series accepted")
	}
	// Oversized series are truncated to the newest points, not rejected.
	long := make([]Point, 10)
	for i := range long {
		long[i] = Point{uint64(i), float64(i)}
	}
	if err := db.RestoreState(&TSDBState{Cap: 4, Series: []TSSeriesState{{Name: "a", Points: long}}}); err != nil {
		t.Fatal(err)
	}
	if got := db.Series("a"); len(got) != 4 || got[0].T != 6 {
		t.Fatalf("oversized restore kept %+v", got)
	}
}
