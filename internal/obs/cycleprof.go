package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// ProfBucket names one attribution bucket of the tick-loop cycle
// profiler. The catalog mirrors the simulator's component layering.
type ProfBucket uint8

const (
	// PBHarness absorbs time spent outside instrumented sections: the
	// benchmark loop itself, function-call glue between laps, and the
	// profiler's own timestamp reads. Keeping it as an explicit bucket
	// is what lets the report account for ~100% of wall time instead
	// of leaving inter-section gaps unattributed.
	PBHarness ProfBucket = iota
	// PBCPU is the core model: ROB advance, address generation, retire.
	PBCPU
	// PBShaper is rDAG shaping: slot emission, queue admission.
	PBShaper
	// PBCamouflage is fake-request synthesis for unused rDAG slots.
	PBCamouflage
	// PBEgress is shaped-egress staging, tracing and drain.
	PBEgress
	// PBSched is memory-controller scheduling (FR-FCFS / secure arbiter
	// picks).
	PBSched
	// PBDRAM is device timing: bank/rank/bus state machines in Service.
	PBDRAM
	// PBMemctrl is controller bookkeeping around the scheduler: queue
	// intake, completion heap, stats and drain.
	PBMemctrl
	// PBRoute is response routing back to cores.
	PBRoute
	// PBOther is everything explicitly lapped but not in the catalog
	// (fault delivery, audit taps, watchdog checks).
	PBOther

	numProfBuckets
)

var profBucketNames = [numProfBuckets]string{
	PBHarness:    "harness",
	PBCPU:        "cpu",
	PBShaper:     "shaper",
	PBCamouflage: "camouflage",
	PBEgress:     "egress",
	PBSched:      "sched",
	PBDRAM:       "dram",
	PBMemctrl:    "memctrl",
	PBRoute:      "route",
	PBOther:      "other",
}

// String returns the bucket's stable name.
func (b ProfBucket) String() string {
	if int(b) < len(profBucketNames) {
		return profBucketNames[b]
	}
	return "unknown"
}

// NumProfBuckets is the size of the bucket catalog.
const NumProfBuckets = int(numProfBuckets)

// CycleProfile attributes wall time to per-component buckets with a
// telescoping lap clock: the profiler keeps a single "last lap"
// timestamp, and each Lap(b) charges the time since the previous lap —
// whichever bucket it hit — to b and advances the clock. Because every
// nanosecond between the first and the latest lap lands in exactly one
// bucket, the sum of buckets equals elapsed wall time by construction;
// unattributed time can only accrue before the first lap. Instrumented
// code brackets each section with a Lap at its end, and the tick
// harness laps PBHarness at the top of each tick to absorb loop glue.
//
// Nil receivers are no-ops (~2 ns/site), so the profiler threads
// through the hot loop exactly like Registry and Tracer. It is NOT safe
// for concurrent use: one profiler belongs to one simulation thread.
type CycleProfile struct {
	base time.Time
	last int64
	ns   [numProfBuckets]int64
	laps [numProfBuckets]uint64
}

// NewCycleProfile starts a profiler; the lap clock begins at the call.
func NewCycleProfile() *CycleProfile {
	return &CycleProfile{base: time.Now()}
}

// Lap charges the time since the previous lap to bucket b and advances
// the lap clock. No-op on nil.
func (p *CycleProfile) Lap(b ProfBucket) {
	if p == nil {
		return
	}
	now := int64(time.Since(p.base))
	p.ns[b] += now - p.last
	p.laps[b]++
	p.last = now
}

// Ns returns the nanoseconds attributed to bucket b so far.
func (p *CycleProfile) Ns(b ProfBucket) int64 {
	if p == nil {
		return 0
	}
	return p.ns[b]
}

// Laps returns how many laps landed in bucket b.
func (p *CycleProfile) Laps(b ProfBucket) uint64 {
	if p == nil {
		return 0
	}
	return p.laps[b]
}

// Reset zeroes all buckets and restarts the lap clock.
func (p *CycleProfile) Reset() {
	if p == nil {
		return
	}
	*p = CycleProfile{base: time.Now()}
}

// ProfReport is the cycle-attribution evidence file: per-bucket wall
// time with shares of the attributed total, plus coverage against a
// caller-measured wall-clock interval (e.g. the benchmark's elapsed
// time). Coverage >= 0.95 is the acceptance bar gating the
// event-driven refactor.
type ProfReport struct {
	// Buckets is sorted by descending nanoseconds, stable by name.
	Buckets []ProfBucketReport `json:"buckets"`
	// TotalNs is the sum over all buckets (attributed time).
	TotalNs int64 `json:"total_ns"`
	// WallNs is the caller-supplied wall interval (0 = unknown).
	WallNs int64 `json:"wall_ns,omitempty"`
	// Coverage is TotalNs/WallNs, the fraction of wall time the
	// attribution explains (omitted when WallNs is 0).
	Coverage float64 `json:"coverage,omitempty"`
	// Ticks is the caller-supplied tick count (0 = unknown); with it
	// each bucket also reports ns/tick.
	Ticks uint64 `json:"ticks,omitempty"`
}

// ProfBucketReport is one bucket row of a ProfReport.
type ProfBucketReport struct {
	Name      string  `json:"name"`
	Ns        int64   `json:"ns"`
	Share     float64 `json:"share"`
	Laps      uint64  `json:"laps"`
	NsPerTick float64 `json:"ns_per_tick,omitempty"`
}

// Report builds the attribution report. wall is the wall-clock interval
// the profile should explain (pass 0 to skip coverage) and ticks the
// number of simulated ticks it spans (0 to skip per-tick rates).
func (p *CycleProfile) Report(wall time.Duration, ticks uint64) *ProfReport {
	if p == nil {
		return nil
	}
	r := &ProfReport{WallNs: int64(wall), Ticks: ticks}
	for b := ProfBucket(0); b < numProfBuckets; b++ {
		if p.ns[b] == 0 && p.laps[b] == 0 {
			continue
		}
		row := ProfBucketReport{Name: b.String(), Ns: p.ns[b], Laps: p.laps[b]}
		if ticks > 0 {
			row.NsPerTick = float64(p.ns[b]) / float64(ticks)
		}
		r.Buckets = append(r.Buckets, row)
		r.TotalNs += p.ns[b]
	}
	for i := range r.Buckets {
		if r.TotalNs > 0 {
			r.Buckets[i].Share = float64(r.Buckets[i].Ns) / float64(r.TotalNs)
		}
	}
	sort.SliceStable(r.Buckets, func(i, j int) bool {
		if r.Buckets[i].Ns != r.Buckets[j].Ns {
			return r.Buckets[i].Ns > r.Buckets[j].Ns
		}
		return r.Buckets[i].Name < r.Buckets[j].Name
	})
	if r.WallNs > 0 {
		r.Coverage = float64(r.TotalNs) / float64(r.WallNs)
	}
	return r
}

// String renders the report as the text table printed by
// dagsim -cycle-profile.
func (r *ProfReport) String() string {
	if r == nil {
		return "cycle profiling disabled\n"
	}
	var b strings.Builder
	b.WriteString("== cycle attribution ==\n")
	fmt.Fprintf(&b, "%-12s %14s %8s %12s", "bucket", "ns", "share", "laps")
	if r.Ticks > 0 {
		fmt.Fprintf(&b, " %10s", "ns/tick")
	}
	b.WriteString("\n")
	for _, row := range r.Buckets {
		fmt.Fprintf(&b, "%-12s %14d %7.1f%% %12d", row.Name, row.Ns, 100*row.Share, row.Laps)
		if r.Ticks > 0 {
			fmt.Fprintf(&b, " %10.1f", row.NsPerTick)
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "attributed %d ns", r.TotalNs)
	if r.WallNs > 0 {
		fmt.Fprintf(&b, " of %d ns wall (coverage %.1f%%)", r.WallNs, 100*r.Coverage)
	}
	if r.Ticks > 0 {
		fmt.Fprintf(&b, " over %d ticks", r.Ticks)
	}
	b.WriteString("\n")
	return b.String()
}

// WriteJSON writes the report as deterministic indented JSON.
func (r *ProfReport) WriteJSON(w io.Writer) error {
	if r == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
