package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// spin burns CPU for roughly d without sleeping, so lap attribution has
// real work to measure.
func spin(d time.Duration) {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
	}
}

// TestCycleProfileTelescopes pins the core invariant of the lap design:
// every nanosecond between the first and last lap lands in exactly one
// bucket, so the attributed total explains (almost all of) wall time.
func TestCycleProfileTelescopes(t *testing.T) {
	start := time.Now()
	p := NewCycleProfile()
	for i := 0; i < 50; i++ {
		spin(100 * time.Microsecond)
		p.Lap(PBCPU)
		spin(50 * time.Microsecond)
		p.Lap(PBDRAM)
		p.Lap(PBHarness)
	}
	wall := time.Since(start)

	r := p.Report(wall, 50)
	if r.Coverage < 0.95 {
		t.Fatalf("coverage %.3f < 0.95 (attributed %d ns of %d ns)", r.Coverage, r.TotalNs, r.WallNs)
	}
	if r.Coverage > 1.05 {
		t.Fatalf("coverage %.3f > 1.05: attribution exceeds wall time", r.Coverage)
	}
	if p.Ns(PBCPU) <= p.Ns(PBDRAM) {
		t.Fatalf("cpu bucket (%d ns) should dominate dram (%d ns)", p.Ns(PBCPU), p.Ns(PBDRAM))
	}
	if p.Laps(PBCPU) != 50 || p.Laps(PBDRAM) != 50 {
		t.Fatalf("lap counts wrong: cpu=%d dram=%d", p.Laps(PBCPU), p.Laps(PBDRAM))
	}
	// The report is sorted by descending ns and shares sum to ~1.
	var shares float64
	for i, row := range r.Buckets {
		shares += row.Share
		if i > 0 && row.Ns > r.Buckets[i-1].Ns {
			t.Fatalf("report not sorted by ns: %+v", r.Buckets)
		}
	}
	if shares < 0.999 || shares > 1.001 {
		t.Fatalf("shares sum to %.4f, want 1", shares)
	}
}

func TestCycleProfileNilAndReset(t *testing.T) {
	var p *CycleProfile
	p.Lap(PBCPU) // must not panic
	if p.Ns(PBCPU) != 0 || p.Laps(PBCPU) != 0 {
		t.Fatal("nil profile reported nonzero")
	}
	if p.Report(time.Second, 1) != nil {
		t.Fatal("nil profile produced a report")
	}
	p.Reset()

	live := NewCycleProfile()
	live.Lap(PBSched)
	live.Reset()
	if live.Ns(PBSched) != 0 || live.Laps(PBSched) != 0 {
		t.Fatal("reset did not clear buckets")
	}
}

func TestProfReportRendering(t *testing.T) {
	p := NewCycleProfile()
	spin(time.Millisecond)
	p.Lap(PBMemctrl)
	r := p.Report(2*time.Millisecond, 10)

	text := r.String()
	for _, want := range []string{"cycle attribution", "memctrl", "coverage", "ns/tick"} {
		if !strings.Contains(text, want) {
			t.Errorf("text report missing %q:\n%s", want, text)
		}
	}

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back ProfReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}
	if back.TotalNs != r.TotalNs || back.Ticks != 10 {
		t.Fatalf("round-tripped report diverges: %+v vs %+v", back, r)
	}

	var nilr *ProfReport
	if got := nilr.String(); !strings.Contains(got, "disabled") {
		t.Errorf("nil report String = %q", got)
	}
	if err := nilr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
}
