package obs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Spans is the flight recorder's structured-span layer: request-scoped
// begin/end pairs with deterministic IDs and parent/child nesting,
// recorded as EvSpanBegin/EvSpanEnd events into a ring Tracer. Like
// every collector in this package it is nil-no-op (all methods are
// safe on a nil receiver and cost one predictable branch), and it is
// measurement-only: nothing in the simulator ever reads it back, so
// shaped egress stays bit-identical with spans on or off.
//
// IDs are allocated from a monotonic counter, never from wall clock or
// randomness, so a run produces the same span IDs every time and a
// checkpoint/restore resumes the sequence exactly where it left off.
type Spans struct {
	mu   sync.Mutex
	tr   *Tracer
	next uint64
	open map[uint64]OpenSpan
}

// OpenSpan describes a span that has begun but not yet ended. It holds
// everything needed to re-emit the begin event after a checkpoint
// restore, so spans open at Save reopen identically after Load.
type OpenSpan struct {
	ID     uint64    `json:"id"`
	Parent uint64    `json:"parent,omitempty"`
	Name   string    `json:"name"`
	Comp   Component `json:"comp"`
	Index  int32     `json:"index,omitempty"`
	Domain int32     `json:"domain,omitempty"`
	Start  uint64    `json:"start"`
}

// NewSpans builds a span recorder emitting into tr (which may be nil:
// spans still allocate IDs and track openness, useful for propagation
// without local retention).
func NewSpans(tr *Tracer) *Spans {
	return &Spans{tr: tr, next: 1, open: make(map[uint64]OpenSpan)}
}

// Begin opens a span named name under parent (0 = root) at cycle now on
// lane (comp, index, domain), returning its ID. Returns 0 on nil.
func (s *Spans) Begin(name string, comp Component, index, domain int32, parent, now uint64) uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	id := s.next
	s.next++
	os := OpenSpan{ID: id, Parent: parent, Name: name, Comp: comp, Index: index, Domain: domain, Start: now}
	s.open[id] = os
	s.mu.Unlock()
	s.tr.Emit(Event{Cycle: now, Span: id, Parent: parent, Name: name, Comp: comp, Kind: EvSpanBegin, Index: index, Domain: domain})
	return id
}

// End closes span id at cycle now. Unknown or zero IDs are ignored, so
// callers may End unconditionally on paths where Begin was skipped.
func (s *Spans) End(id, now uint64) {
	if s == nil || id == 0 {
		return
	}
	s.mu.Lock()
	os, ok := s.open[id]
	if ok {
		delete(s.open, id)
	}
	s.mu.Unlock()
	if !ok {
		return
	}
	s.tr.Emit(Event{Cycle: now, Span: id, Parent: os.Parent, Name: os.Name, Comp: os.Comp, Kind: EvSpanEnd, Index: os.Index, Domain: os.Domain})
}

// Open returns the currently open spans ordered by ID.
func (s *Spans) Open() []OpenSpan {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]OpenSpan, 0, len(s.open))
	for _, os := range s.open {
		out = append(out, os)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// SpansState is the serializable state of a Spans recorder: the next ID
// to allocate and the spans open at capture time, ordered by ID so the
// encoding is deterministic.
type SpansState struct {
	Next uint64     `json:"next"`
	Open []OpenSpan `json:"open,omitempty"`
}

// SaveState captures the recorder for a checkpoint. Nil receiver
// returns nil.
func (s *Spans) SaveState() *SpansState {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	next := s.next
	s.mu.Unlock()
	return &SpansState{Next: next, Open: s.Open()}
}

// RestoreState rebuilds the recorder from a checkpoint and re-emits the
// begin event of every span that was open at Save, at its original
// start cycle, so the restored trace nests identically to an
// uninterrupted run. A nil state resets to a fresh recorder.
func (s *Spans) RestoreState(st *SpansState) error {
	if s == nil {
		if st == nil {
			return nil
		}
		return fmt.Errorf("obs: span state restore into a nil recorder")
	}
	s.mu.Lock()
	if st == nil {
		s.next = 1
		s.open = make(map[uint64]OpenSpan)
		s.mu.Unlock()
		return nil
	}
	if st.Next == 0 {
		s.mu.Unlock()
		return fmt.Errorf("obs: span state has zero next ID")
	}
	open := make(map[uint64]OpenSpan, len(st.Open))
	for _, os := range st.Open {
		if os.ID == 0 || os.ID >= st.Next {
			s.mu.Unlock()
			return fmt.Errorf("obs: open span ID %d out of range (next %d)", os.ID, st.Next)
		}
		open[os.ID] = os
	}
	s.next = st.Next
	s.open = open
	s.mu.Unlock()
	for _, os := range st.Open {
		s.tr.Emit(Event{Cycle: os.Start, Span: os.ID, Parent: os.Parent, Name: os.Name, Comp: os.Comp, Kind: EvSpanBegin, Index: os.Index, Domain: os.Domain})
	}
	return nil
}

// SpanHeader is the HTTP header carrying a span context across process
// boundaries (auditd client -> auditd ingest).
const SpanHeader = "X-Dag-Span"

// SpanContext is a propagated parent reference: the remote span ID and
// the name of the trace it belongs to.
type SpanContext struct {
	Span uint64
	Name string
}

// Encode renders the context for the SpanHeader value.
func (c SpanContext) Encode() string {
	if c.Span == 0 {
		return ""
	}
	if c.Name == "" {
		return strconv.FormatUint(c.Span, 10)
	}
	return strconv.FormatUint(c.Span, 10) + ";" + c.Name
}

// ParseSpanContext decodes a SpanHeader value. Empty or malformed
// values return the zero context (span 0 = no parent), never an error:
// a bad header must not fail an ingest.
func ParseSpanContext(v string) SpanContext {
	if v == "" {
		return SpanContext{}
	}
	name := ""
	if i := strings.IndexByte(v, ';'); i >= 0 {
		v, name = v[:i], v[i+1:]
	}
	id, err := strconv.ParseUint(strings.TrimSpace(v), 10, 64)
	if err != nil {
		return SpanContext{}
	}
	return SpanContext{Span: id, Name: name}
}
