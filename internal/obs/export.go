package obs

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// WriteChromeTrace writes events as Chrome trace-event JSON (the format
// Perfetto and chrome://tracing open directly). Each component becomes a
// process, each lane Index a thread, so DRAM banks, shapers and cores
// render as parallel swimlanes; one simulated cycle maps to one trace
// microsecond. Output is byte-deterministic for a given event slice:
// metadata is sorted and events are written in slice order.
func WriteChromeTrace(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return err
	}

	// Lane metadata: name every (component, index) pair that occurs.
	type lane struct {
		pid, tid int32
	}
	seen := make(map[lane]bool)
	comps := make(map[int32]Component)
	for _, ev := range events {
		pid := int32(ev.Comp) + 1
		seen[lane{pid, ev.Index}] = true
		comps[pid] = ev.Comp
	}
	lanes := make([]lane, 0, len(seen))
	for l := range seen {
		lanes = append(lanes, l)
	}
	sort.Slice(lanes, func(i, j int) bool {
		if lanes[i].pid != lanes[j].pid {
			return lanes[i].pid < lanes[j].pid
		}
		return lanes[i].tid < lanes[j].tid
	})

	first := true
	emit := func(line string) error {
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err := bw.WriteString(line)
		return err
	}

	lastPid := int32(-1)
	for _, l := range lanes {
		if l.pid != lastPid {
			lastPid = l.pid
			line := fmt.Sprintf(`{"ph":"M","name":"process_name","pid":%d,"args":{"name":%q}}`,
				l.pid, comps[l.pid].String())
			if err := emit(line); err != nil {
				return err
			}
		}
		line := fmt.Sprintf(`{"ph":"M","name":"thread_name","pid":%d,"tid":%d,"args":{"name":%q}}`,
			l.pid, l.tid, laneName(comps[l.pid], l.tid))
		if err := emit(line); err != nil {
			return err
		}
	}

	for _, ev := range events {
		pid := int32(ev.Comp) + 1
		var line string
		if ev.Kind == EvSpanBegin || ev.Kind == EvSpanEnd {
			// Spans export as B/E phase pairs: Perfetto nests same-lane
			// B/E events into a parent/child flame automatically, and
			// unmatched begins (spans still open at export) render as
			// running to the end of the trace instead of vanishing.
			ph := "B"
			if ev.Kind == EvSpanEnd {
				ph = "E"
			}
			name := ev.Name
			if name == "" {
				name = ev.Kind.String()
			}
			line = fmt.Sprintf(`{"ph":%q,"name":%q,"cat":"span","ts":%d,"pid":%d,"tid":%d,"args":{"span":%d,"parent":%d,"domain":%d}}`,
				ph, name, ev.Cycle, pid, ev.Index, ev.Span, ev.Parent, ev.Domain)
			if err := emit(line); err != nil {
				return err
			}
			continue
		}
		if ev.Dur > 0 {
			line = fmt.Sprintf(`{"ph":"X","name":%q,"cat":%q,"ts":%d,"dur":%d,"pid":%d,"tid":%d,"args":{"domain":%d}}`,
				ev.Kind.String(), ev.Comp.String(), ev.Cycle, ev.Dur, pid, ev.Index, ev.Domain)
		} else {
			line = fmt.Sprintf(`{"ph":"i","s":"t","name":%q,"cat":%q,"ts":%d,"pid":%d,"tid":%d,"args":{"domain":%d}}`,
				ev.Kind.String(), ev.Comp.String(), ev.Cycle, pid, ev.Index, ev.Domain)
		}
		if err := emit(line); err != nil {
			return err
		}
	}

	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// laneName labels one thread lane inside a component's process group.
func laneName(c Component, tid int32) string {
	switch c {
	case CompBank:
		return fmt.Sprintf("bank %d", tid)
	case CompChannel:
		return fmt.Sprintf("channel %d", tid)
	case CompRank:
		return fmt.Sprintf("rank %d", tid)
	case CompShaper:
		return fmt.Sprintf("shaper dom %d", tid)
	case CompCore:
		return fmt.Sprintf("core dom %d", tid)
	case CompRunner:
		return fmt.Sprintf("job %d", tid)
	case CompClient:
		return fmt.Sprintf("stream %d", tid)
	case CompService:
		return fmt.Sprintf("shard %d", tid)
	default:
		return fmt.Sprintf("lane %d", tid)
	}
}

// WriteChromeTraceFile exports the tracer's retained events to path.
func WriteChromeTraceFile(path string, t *Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteChromeTrace(f, t.Events()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// FormatSummary renders a snapshot as the text metrics table printed by
// the CLIs' -metrics flag: per-domain DRAM/controller/shaper/core
// counters with derived rates, followed by the occupancy and latency
// histograms. cycles is the measurement window length (0 suppresses the
// utilization rates).
func FormatSummary(s *Snapshot, cycles uint64) string {
	if s == nil {
		return "observability disabled\n"
	}
	var b strings.Builder

	b.WriteString("== per-domain metrics ==\n")
	fmt.Fprintf(&b, "%-8s %10s %10s %10s %8s %10s %10s %10s %10s %10s %10s\n",
		"domain", "row-hits", "misses", "conflicts", "hit-rate",
		"reads", "writes", "fakes", "fwd", "bus-cyc", "bus-util")
	for d := 0; d < s.Domains; d++ {
		hits := s.Counter(CtrRowHits, d)
		misses := s.Counter(CtrRowMisses, d)
		conflicts := s.Counter(CtrRowConflicts, d)
		total := hits + misses + conflicts
		if total == 0 && s.Counter(CtrShaperForwarded, d) == 0 && s.Counter(CtrRetired, d) == 0 {
			continue
		}
		hitRate := 0.0
		if total > 0 {
			hitRate = float64(hits) / float64(total)
		}
		busCyc := s.Counter(CtrBusBusyCycles, d)
		util := "-"
		if cycles > 0 {
			util = fmt.Sprintf("%9.1f%%", 100*float64(busCyc)/float64(cycles))
		}
		fmt.Fprintf(&b, "%-8d %10d %10d %10d %7.1f%% %10d %10d %10d %10d %10d %10s\n",
			d, hits, misses, conflicts, 100*hitRate,
			s.Counter(CtrIssuedReads, d), s.Counter(CtrIssuedWrites, d),
			s.Counter(CtrIssuedFakes, d), s.Counter(CtrShaperForwarded, d),
			busCyc, util)
	}

	b.WriteString("\n== system ==\n")
	fmt.Fprintf(&b, "sched picks %d (reorders %d)  slots seen/used/wasted %d/%d/%d  refreshes %d (stall cycles %d)  precharges %d\n",
		s.Counter(CtrSchedPicks, 0), s.Counter(CtrSchedReorders, 0),
		s.Counter(CtrSlotsSeen, 0), s.Counter(CtrSlotsUsed, 0), s.Counter(CtrSlotsWasted, 0),
		s.Counter(CtrRefreshes, 0), s.Counter(CtrRefreshStallCycles, 0),
		s.CounterTotal(CtrPrecharges))
	if cycles > 0 {
		fmt.Fprintf(&b, "total bus utilization %.1f%% over %d cycles\n",
			100*float64(s.CounterTotal(CtrBusBusyCycles))/float64(cycles), cycles)
	}

	b.WriteString("\n== histograms (log2 buckets: bucket k covers [2^(k-1), 2^k)) ==\n")
	for _, h := range []Hist{HistReqLatency, HistQueueWait, HistQueueDepth, HistShaperQueue, HistEgressQueue, HistNodeWait, HistMLP} {
		for d := 0; d < s.Domains; d++ {
			if s.HistTotal(h, d) == 0 {
				continue
			}
			b.WriteString(formatHistRow(s, h, d))
		}
	}
	return b.String()
}

// formatHistRow renders one histogram as a single line with quantiles and
// the populated buckets.
func formatHistRow(s *Snapshot, h Hist, d int) string {
	var b strings.Builder
	p50, _ := s.HistQuantile(h, d, 0.50)
	p90, _ := s.HistQuantile(h, d, 0.90)
	p99, _ := s.HistQuantile(h, d, 0.99)
	fmt.Fprintf(&b, "%-24s dom %-3d n=%-10d p50>=%-8d p90>=%-8d p99>=%-8d ",
		h.String(), d, s.HistTotal(h, d), p50, p90, p99)
	buckets := s.HistBuckets(h, d)
	parts := make([]string, 0, 8)
	for k, n := range buckets {
		if n > 0 {
			parts = append(parts, fmt.Sprintf("[%d:%d]", BucketLow(k), n))
		}
	}
	b.WriteString(strings.Join(parts, " "))
	b.WriteString("\n")
	return b.String()
}
