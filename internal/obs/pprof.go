package obs

import (
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof" // registers the /debug/pprof handlers
	"time"
)

// ServePprof starts an HTTP server on addr (e.g. "localhost:6060")
// exposing the standard net/http/pprof endpoints, so long sweeps can be
// profiled live (`go tool pprof http://localhost:6060/debug/pprof/profile`).
// It returns the bound address; the server runs until the process exits.
func ServePprof(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: pprof listen on %s: %w", addr, err)
	}
	go func() {
		// DefaultServeMux carries the pprof handlers via the blank import.
		_ = http.Serve(ln, nil)
	}()
	return ln.Addr().String(), nil
}

// StartIntervalDump launches a goroutine that, every interval, writes a
// one-line delta summary of the registry's headline counters to w. It
// returns a stop function. Safe with a live simulation thread: snapshots
// use atomic loads.
func StartIntervalDump(w io.Writer, r *Registry, interval time.Duration) (stop func()) {
	if r == nil || interval <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	go func() {
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		prev := r.Snapshot()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				cur := r.Snapshot()
				d := cur.Sub(prev)
				prev = cur
				fmt.Fprintf(w, "[obs] +%s: issued %d (fakes %d) row h/m/c %d/%d/%d retired %d rob-stalls %d\n",
					interval,
					d.CounterTotal(CtrIssuedReads)+d.CounterTotal(CtrIssuedWrites),
					d.CounterTotal(CtrIssuedFakes),
					d.CounterTotal(CtrRowHits), d.CounterTotal(CtrRowMisses), d.CounterTotal(CtrRowConflicts),
					d.CounterTotal(CtrRetired), d.CounterTotal(CtrROBStallCycles))
			}
		}
	}()
	return func() { close(done) }
}
