package obs

import (
	"fmt"
	"sync/atomic"
)

// Restore overwrites the registry's counters and histogram buckets from a
// snapshot (the inverse of Snapshot, used by checkpoint restore so that
// metrics reported after a resume match an uninterrupted run). A nil
// snapshot on a nil registry is a no-op; shape mismatches are an error.
func (r *Registry) Restore(s *Snapshot) error {
	if r == nil {
		if s == nil {
			return nil
		}
		return fmt.Errorf("obs: snapshot restore into a nil registry")
	}
	if s == nil {
		return fmt.Errorf("obs: nil snapshot restore into a live registry")
	}
	if s.Domains != r.domains || len(s.Counters) != len(r.counters) || len(s.Hists) != len(r.hists) {
		return fmt.Errorf("obs: snapshot shape (%d domains, %d counters, %d buckets) does not match registry (%d, %d, %d)",
			s.Domains, len(s.Counters), len(s.Hists), r.domains, len(r.counters), len(r.hists))
	}
	for i := range r.counters {
		atomic.StoreUint64(&r.counters[i], s.Counters[i])
	}
	for i := range r.hists {
		atomic.StoreUint64(&r.hists[i], s.Hists[i])
	}
	return nil
}
