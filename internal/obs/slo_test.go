package obs

import (
	"reflect"
	"testing"
)

func TestEngineThresholdEdgeTriggered(t *testing.T) {
	db := NewTSDB(16)
	e := NewEngine(db, []Rule{{Name: "deep", Series: "queue", Threshold: 10}})

	db.Append("queue", 1, 5)
	if got := e.Eval(1); got != nil {
		t.Fatalf("alert below threshold: %+v", got)
	}
	db.Append("queue", 2, 12)
	edges := e.Eval(2)
	if len(edges) != 1 || edges[0].State != "firing" || edges[0].Value != 12 || edges[0].Seq != 1 {
		t.Fatalf("firing edge = %+v", edges)
	}
	// Still violated: deduplicated, no new edge.
	db.Append("queue", 3, 30)
	if got := e.Eval(3); got != nil {
		t.Fatalf("duplicate alert while active: %+v", got)
	}
	if got := e.Firing(); !reflect.DeepEqual(got, []string{"deep|queue"}) {
		t.Fatalf("firing = %v", got)
	}
	// Recovery emits a resolved edge; re-violation fires again.
	db.Append("queue", 4, 2)
	edges = e.Eval(4)
	if len(edges) != 1 || edges[0].State != "resolved" || edges[0].Seq != 2 {
		t.Fatalf("resolved edge = %+v", edges)
	}
	db.Append("queue", 5, 50)
	edges = e.Eval(5)
	if len(edges) != 1 || edges[0].State != "firing" || edges[0].Seq != 3 {
		t.Fatalf("refire edge = %+v", edges)
	}
	if got := len(e.History()); got != 3 {
		t.Fatalf("history length = %d, want 3", got)
	}
}

// TestEngineBurnRateWildcard is the leakage-budget shape: a 0/1
// budget-exceeded indicator per tenant, one wildcard rule, the insecure
// tenant burning and firing while dagguise stays silent.
func TestEngineBurnRateWildcard(t *testing.T) {
	db := NewTSDB(16)
	e := NewEngine(db, []Rule{{
		Name: "leak-burn", Series: "leak_burn/*", Kind: RuleBurnRate,
		Threshold: 0.5, Window: 4, MinPoints: 3,
	}})

	for i := uint64(1); i <= 4; i++ {
		db.Append("leak_burn/insecure", i, 1)
		db.Append("leak_burn/dagguise", i, 0)
		if i < 3 {
			// Below MinPoints: silent even though every window burned.
			if got := e.Eval(i); got != nil {
				t.Fatalf("alert before min_points: %+v", got)
			}
		}
	}
	edges := e.Eval(5)
	if len(edges) != 1 {
		t.Fatalf("want exactly one firing tenant, got %+v", edges)
	}
	a := edges[0]
	if a.Series != "leak_burn/insecure" || a.State != "firing" || a.Value != 1 {
		t.Fatalf("edge = %+v", a)
	}
	if got := e.Firing(); !reflect.DeepEqual(got, []string{"leak-burn|leak_burn/insecure"}) {
		t.Fatalf("firing = %v", got)
	}
}

func TestEngineLessEqualOp(t *testing.T) {
	db := NewTSDB(4)
	e := NewEngine(db, []Rule{{Name: "starved", Series: "rate", Op: "<=", Threshold: 1}})
	db.Append("rate", 1, 0.2)
	if edges := e.Eval(1); len(edges) != 1 || edges[0].State != "firing" {
		t.Fatalf("<= rule did not fire: %+v", edges)
	}
}

func TestEngineNilIsNoOp(t *testing.T) {
	var e *Engine
	if e.Eval(1) != nil || e.History() != nil || e.Firing() != nil || e.Rules() != nil || e.SaveState() != nil {
		t.Fatal("nil engine returned data")
	}
	if err := e.RestoreState(nil); err != nil {
		t.Fatal(err)
	}
	if err := e.RestoreState(&EngineState{NextSeq: 1}); err == nil {
		t.Fatal("restore into nil engine accepted")
	}
}

func TestEngineStateRoundTrip(t *testing.T) {
	db := NewTSDB(8)
	rules := []Rule{{Name: "deep", Series: "queue", Threshold: 10}}
	e := NewEngine(db, rules)
	db.Append("queue", 1, 99)
	e.Eval(1)

	st := e.SaveState()
	e2 := NewEngine(db, rules)
	if err := e2.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	// The violation is still active after restore: no duplicate edge.
	db.Append("queue", 2, 99)
	if edges := e2.Eval(2); edges != nil {
		t.Fatalf("restored engine re-fired an active alert: %+v", edges)
	}
	// Recovery resumes the sequence numbering.
	db.Append("queue", 3, 0)
	edges := e2.Eval(3)
	if len(edges) != 1 || edges[0].State != "resolved" || edges[0].Seq != 2 {
		t.Fatalf("post-restore edge = %+v", edges)
	}
	if err := e2.RestoreState(&EngineState{NextSeq: 0}); err == nil {
		t.Fatal("zero next_seq accepted")
	}
}

func TestParseRules(t *testing.T) {
	rules, err := ParseRules([]byte(`[
		{"name": "leak-burn", "series": "leak_burn/*", "kind": "burn_rate", "threshold": 0.5, "window": 3},
		{"name": "deep", "series": "queue", "threshold": 10}
	]`))
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 || rules[0].Kind != RuleBurnRate || rules[1].Kind != RuleThreshold {
		t.Fatalf("parsed = %+v", rules)
	}
	if rules[1].Op != ">=" || rules[1].Window != 5 || rules[1].MinPoints != 1 {
		t.Fatalf("defaults not applied: %+v", rules[1])
	}
	for _, bad := range []string{
		`[{"series": "x", "threshold": 1}]`,             // no name
		`[{"name": "x", "threshold": 1}]`,               // no series
		`[{"name": "x", "series": "s", "kind": "avg"}]`, // bad kind
		`[{"name": "x", "series": "s", "op": "=="}]`,    // bad op
		`[{"name": "x", "series": "s", "bogus": true}]`, // unknown field
		`{"name": "x"}`, // not a list
	} {
		if _, err := ParseRules([]byte(bad)); err == nil {
			t.Errorf("ParseRules accepted %s", bad)
		}
	}
}

func TestRuleSeverity(t *testing.T) {
	// Default and validation.
	r := Rule{Name: "r", Series: "s", Threshold: 1}
	if err := r.Validate(); err != nil || r.Severity != SeverityWarning {
		t.Fatalf("default severity: %q err=%v", r.Severity, err)
	}
	bad := Rule{Name: "r", Series: "s", Threshold: 1, Severity: "shouting"}
	if err := bad.Validate(); err == nil {
		t.Fatal("unknown severity accepted")
	}

	// Rank ordering for -min-severity filtering.
	if !(SeverityRank("") < SeverityRank(SeverityInfo) &&
		SeverityRank(SeverityInfo) < SeverityRank(SeverityWarning) &&
		SeverityRank(SeverityWarning) < SeverityRank(SeverityCritical)) {
		t.Fatal("severity ranks out of order")
	}

	// Alerts carry the rule's severity on both edge kinds.
	db := NewTSDB(4)
	eng := NewEngine(db, []Rule{{Name: "crit", Series: "x", Threshold: 1, Severity: SeverityCritical}})
	db.Append("x", 1, 5)
	firing := eng.Eval(1)
	db.Append("x", 2, 0)
	resolved := eng.Eval(2)
	if len(firing) != 1 || firing[0].Severity != SeverityCritical {
		t.Fatalf("firing edge severity: %+v", firing)
	}
	if len(resolved) != 1 || resolved[0].Severity != SeverityCritical {
		t.Fatalf("resolved edge severity: %+v", resolved)
	}
}
