package obs

import (
	"bytes"
	"reflect"
	"testing"
)

func TestTracerRingOrder(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 3; i++ {
		tr.Emit(Event{Cycle: uint64(i)})
	}
	evs := tr.Events()
	if len(evs) != 3 || evs[0].Cycle != 0 || evs[2].Cycle != 2 {
		t.Fatalf("pre-wrap events = %+v", evs)
	}
	for i := 3; i < 10; i++ {
		tr.Emit(Event{Cycle: uint64(i)})
	}
	evs = tr.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := uint64(6 + i); ev.Cycle != want {
			t.Fatalf("event %d cycle = %d, want %d (oldest-first order)", i, ev.Cycle, want)
		}
	}
	if tr.Overwritten() != 6 {
		t.Fatalf("overwritten = %d, want 6", tr.Overwritten())
	}
	if tr.Cap() != 4 {
		t.Fatalf("cap = %d", tr.Cap())
	}
}

func TestTracerReset(t *testing.T) {
	tr := NewTracer(2)
	tr.Emit(Event{Cycle: 1})
	tr.Emit(Event{Cycle: 2})
	tr.Emit(Event{Cycle: 3})
	tr.Reset()
	if tr.Len() != 0 || tr.Overwritten() != 0 {
		t.Fatalf("reset left len=%d overwritten=%d", tr.Len(), tr.Overwritten())
	}
	tr.Emit(Event{Cycle: 9})
	evs := tr.Events()
	if len(evs) != 1 || evs[0].Cycle != 9 {
		t.Fatalf("post-reset events = %+v", evs)
	}
	if tr.Cap() != 2 {
		t.Fatal("reset changed capacity")
	}
}

func TestTracerDefaultCap(t *testing.T) {
	if got := NewTracer(0).Cap(); got != DefaultTraceCap {
		t.Fatalf("default cap = %d, want %d", got, DefaultTraceCap)
	}
	if got := NewTracer(-5).Cap(); got != DefaultTraceCap {
		t.Fatalf("negative cap = %d, want %d", got, DefaultTraceCap)
	}
}

// TestTracerOverflowDeterministic pins ring-overflow behavior: for a
// given emission sequence the retained window, the overwrite count and
// the export are identical run to run, regardless of how far past
// capacity the sequence runs.
func TestTracerOverflowDeterministic(t *testing.T) {
	emitAll := func() *Tracer {
		tr := NewTracer(8)
		for i := 0; i < 100; i++ {
			tr.Emit(Event{Cycle: uint64(i), Comp: Component(i % 3), Kind: EventKind(i % 5), Index: int32(i % 4)})
		}
		return tr
	}
	a, b := emitAll(), emitAll()

	if a.Overwritten() != 92 || b.Overwritten() != a.Overwritten() {
		t.Fatalf("overwritten = %d / %d, want 92", a.Overwritten(), b.Overwritten())
	}
	evA, evB := a.Events(), b.Events()
	if len(evA) != 8 {
		t.Fatalf("retained %d events, want 8", len(evA))
	}
	// The retained window is exactly the newest 8 emissions, in order.
	for i, ev := range evA {
		if want := uint64(92 + i); ev.Cycle != want {
			t.Fatalf("event %d has cycle %d, want %d", i, ev.Cycle, want)
		}
	}
	if !reflect.DeepEqual(evA, evB) {
		t.Fatalf("two identical emission sequences retained different windows")
	}

	var bufA, bufB bytes.Buffer
	if err := WriteChromeTrace(&bufA, evA); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeTrace(&bufB, evB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Fatal("overflowed-trace export not byte-deterministic")
	}
}

// TestTracerOverflowDropsSpanBegins documents the interaction between
// the bounded ring and spans: an overwritten EvSpanBegin leaves its
// EvSpanEnd unpaired in the retained window, and the exporter must
// still produce output (the E event simply closes an implicit lane
// scope in Perfetto).
func TestTracerOverflowDropsSpanBegins(t *testing.T) {
	tr := NewTracer(4)
	sp := NewSpans(tr)
	id := sp.Begin("long", CompRunner, 0, 0, 0, 1)
	for i := 0; i < 10; i++ {
		tr.Emit(Event{Cycle: uint64(2 + i), Comp: CompBank, Kind: EvRowHit})
	}
	sp.End(id, 100)

	evs := tr.Events()
	if evs[len(evs)-1].Kind != EvSpanEnd {
		t.Fatalf("span end not retained: %+v", evs)
	}
	for _, ev := range evs {
		if ev.Kind == EvSpanBegin {
			t.Fatalf("span begin should have been overwritten: %+v", evs)
		}
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, evs); err != nil {
		t.Fatalf("export with unpaired span end failed: %v", err)
	}
}
