package obs

import "testing"

func TestTracerRingOrder(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 3; i++ {
		tr.Emit(Event{Cycle: uint64(i)})
	}
	evs := tr.Events()
	if len(evs) != 3 || evs[0].Cycle != 0 || evs[2].Cycle != 2 {
		t.Fatalf("pre-wrap events = %+v", evs)
	}
	for i := 3; i < 10; i++ {
		tr.Emit(Event{Cycle: uint64(i)})
	}
	evs = tr.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := uint64(6 + i); ev.Cycle != want {
			t.Fatalf("event %d cycle = %d, want %d (oldest-first order)", i, ev.Cycle, want)
		}
	}
	if tr.Overwritten() != 6 {
		t.Fatalf("overwritten = %d, want 6", tr.Overwritten())
	}
	if tr.Cap() != 4 {
		t.Fatalf("cap = %d", tr.Cap())
	}
}

func TestTracerReset(t *testing.T) {
	tr := NewTracer(2)
	tr.Emit(Event{Cycle: 1})
	tr.Emit(Event{Cycle: 2})
	tr.Emit(Event{Cycle: 3})
	tr.Reset()
	if tr.Len() != 0 || tr.Overwritten() != 0 {
		t.Fatalf("reset left len=%d overwritten=%d", tr.Len(), tr.Overwritten())
	}
	tr.Emit(Event{Cycle: 9})
	evs := tr.Events()
	if len(evs) != 1 || evs[0].Cycle != 9 {
		t.Fatalf("post-reset events = %+v", evs)
	}
	if tr.Cap() != 2 {
		t.Fatal("reset changed capacity")
	}
}

func TestTracerDefaultCap(t *testing.T) {
	if got := NewTracer(0).Cap(); got != DefaultTraceCap {
		t.Fatalf("default cap = %d, want %d", got, DefaultTraceCap)
	}
	if got := NewTracer(-5).Cap(); got != DefaultTraceCap {
		t.Fatalf("negative cap = %d, want %d", got, DefaultTraceCap)
	}
}
