package obs

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestSpanBeginEndEmitsNestedEvents(t *testing.T) {
	tr := NewTracer(64)
	sp := NewSpans(tr)

	root := sp.Begin("job", CompRunner, 0, 1, 0, 100)
	child := sp.Begin("chunk", CompRunner, 0, 1, root, 110)
	if root != 1 || child != 2 {
		t.Fatalf("span IDs not counter-allocated: root=%d child=%d", root, child)
	}
	sp.End(child, 150)
	sp.End(root, 200)

	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("want 4 span events, got %d", len(evs))
	}
	want := []Event{
		{Cycle: 100, Span: 1, Name: "job", Comp: CompRunner, Kind: EvSpanBegin, Domain: 1},
		{Cycle: 110, Span: 2, Parent: 1, Name: "chunk", Comp: CompRunner, Kind: EvSpanBegin, Domain: 1},
		{Cycle: 150, Span: 2, Parent: 1, Name: "chunk", Comp: CompRunner, Kind: EvSpanEnd, Domain: 1},
		{Cycle: 200, Span: 1, Name: "job", Comp: CompRunner, Kind: EvSpanEnd, Domain: 1},
	}
	if !reflect.DeepEqual(evs, want) {
		t.Fatalf("span events:\ngot  %+v\nwant %+v", evs, want)
	}

	if got := sp.Open(); len(got) != 0 {
		t.Fatalf("spans still open after End: %+v", got)
	}
}

func TestSpanEndUnknownAndNilAreNoOps(t *testing.T) {
	var sp *Spans
	if id := sp.Begin("x", CompSystem, 0, 0, 0, 1); id != 0 {
		t.Fatalf("nil recorder allocated ID %d", id)
	}
	sp.End(7, 2) // must not panic

	live := NewSpans(nil) // nil tracer: IDs still allocate
	if id := live.Begin("x", CompSystem, 0, 0, 0, 1); id != 1 {
		t.Fatalf("want ID 1 with nil tracer, got %d", id)
	}
	live.End(99, 2) // unknown ID ignored
	if got := len(live.Open()); got != 1 {
		t.Fatalf("open count = %d, want 1", got)
	}
}

// TestSpanStateRoundTrip pins the checkpoint contract: spans open at
// Save reopen identically after Load — same IDs, parents, names and
// start cycles — and ID allocation resumes without collision.
func TestSpanStateRoundTrip(t *testing.T) {
	tr := NewTracer(64)
	sp := NewSpans(tr)
	root := sp.Begin("job", CompRunner, 0, 1, 0, 100)
	chunk := sp.Begin("chunk", CompRunner, 0, 1, root, 110)
	done := sp.Begin("done", CompRunner, 1, 2, 0, 120)
	sp.End(done, 130) // closed before Save: must not reopen

	st := sp.SaveState()

	tr2 := NewTracer(64)
	sp2 := NewSpans(tr2)
	if err := sp2.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sp2.Open(), sp.Open()) {
		t.Fatalf("open spans diverge after restore:\ngot  %+v\nwant %+v", sp2.Open(), sp.Open())
	}
	// The restore re-emits begin events at the original start cycles.
	evs := tr2.Events()
	if len(evs) != 2 {
		t.Fatalf("want 2 reopened begin events, got %d: %+v", len(evs), evs)
	}
	if evs[0].Span != root || evs[0].Cycle != 100 || evs[1].Span != chunk || evs[1].Cycle != 110 {
		t.Fatalf("reopened events wrong: %+v", evs)
	}
	// ID allocation resumes past every previously issued ID.
	if id := sp2.Begin("next", CompRunner, 0, 1, 0, 140); id != done+1 {
		t.Fatalf("resumed ID = %d, want %d", id, done+1)
	}
	// Ending a reopened span works and closes it.
	sp2.End(chunk, 150)
	if got := len(sp2.Open()); got != 2 { // root + next
		t.Fatalf("open count after end = %d, want 2", got)
	}
}

func TestSpanStateRejectsCorrupt(t *testing.T) {
	sp := NewSpans(nil)
	if err := sp.RestoreState(&SpansState{Next: 0}); err == nil {
		t.Fatal("zero next ID accepted")
	}
	if err := sp.RestoreState(&SpansState{Next: 2, Open: []OpenSpan{{ID: 5}}}); err == nil {
		t.Fatal("out-of-range open span accepted")
	}
	if err := sp.RestoreState(nil); err != nil {
		t.Fatalf("nil state reset failed: %v", err)
	}
	if id := sp.Begin("x", CompSystem, 0, 0, 0, 1); id != 1 {
		t.Fatalf("reset recorder allocated %d, want 1", id)
	}
}

func TestSpanContextEncodeParse(t *testing.T) {
	cases := []struct {
		in   SpanContext
		want string
	}{
		{SpanContext{}, ""},
		{SpanContext{Span: 42}, "42"},
		{SpanContext{Span: 42, Name: "stream/insecure"}, "42;stream/insecure"},
	}
	for _, c := range cases {
		if got := c.in.Encode(); got != c.want {
			t.Errorf("Encode(%+v) = %q, want %q", c.in, got, c.want)
		}
		if back := ParseSpanContext(c.want); back != c.in {
			t.Errorf("ParseSpanContext(%q) = %+v, want %+v", c.want, back, c.in)
		}
	}
	for _, bad := range []string{"abc", "-1", "1e3", ";name"} {
		if got := ParseSpanContext(bad); got != (SpanContext{}) {
			t.Errorf("ParseSpanContext(%q) = %+v, want zero", bad, got)
		}
	}
}

func TestSpanExportNests(t *testing.T) {
	tr := NewTracer(16)
	sp := NewSpans(tr)
	root := sp.Begin("batch", CompService, 3, 1, 0, 10)
	sp.Begin("fold", CompService, 3, 1, root, 12) // left open
	sp.End(root, 20)

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr.Events()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`"ph":"B","name":"batch"`,
		`"ph":"B","name":"fold"`,
		`"args":{"span":2,"parent":1,"domain":1}`,
		`"ph":"E","name":"batch"`,
		`"name":"shard 3"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("span export missing %q:\n%s", want, out)
		}
	}
}
