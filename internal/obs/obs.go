// Package obs is the observability layer of the simulator: typed
// per-domain counters, log-bucketed histograms, a bounded cycle-accurate
// event tracer, and exporters (Chrome trace-event JSON for Perfetto, text
// summary tables, net/http/pprof hooks).
//
// Two invariants govern the package:
//
//   - Zero overhead when disabled. Every collection method is declared on
//     a pointer receiver and is a no-op on the nil pointer, so components
//     hold a possibly-nil *Registry / *Tracer and call through it
//     unconditionally; with observability off the hot tick loop pays one
//     predictable nil check per site and nothing else.
//
//   - Measurement only. Nothing in the simulator ever reads a Registry or
//     Tracer during a tick, so enabling observability cannot perturb
//     simulated timing. internal/sim's observability non-interference test
//     holds the shaped egress stream bit-identical with tracing on and off.
//
// Collection is safe for concurrent use: counters and histogram buckets
// are updated with atomic adds, so a background goroutine (the interval
// snapshot dumper, a pprof handler) may snapshot while the simulation
// thread is writing.
package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Counter identifies one per-domain monotonic counter. Domain 0 holds
// system-wide (unattributed) values; domains 1..N mirror mem.Domain.
type Counter uint8

// The counter catalog. See DESIGN.md "Observability" for the full
// semantics of each metric.
const (
	// DRAM row-buffer outcomes, attributed to the requesting domain.
	CtrRowHits Counter = iota
	CtrRowMisses
	CtrRowConflicts
	// CtrPrecharges counts PRE commands (conflict precharges plus
	// closed-row auto-precharges).
	CtrPrecharges
	// CtrRefreshes counts refresh windows performed (domain 0).
	CtrRefreshes
	// CtrRefreshStallCycles accumulates cycles transactions were displaced
	// by refresh windows (domain 0).
	CtrRefreshStallCycles
	// CtrBusBusyCycles accumulates data-bus burst occupancy per domain;
	// the sum over domains divided by wall cycles is bus utilization.
	CtrBusBusyCycles
	// CtrBankBusyCycles accumulates bank occupancy (start to data done).
	CtrBankBusyCycles
	// Controller issue counters per domain.
	CtrIssuedReads
	CtrIssuedWrites
	CtrIssuedFakes
	// CtrSchedPicks counts scheduling decisions that issued a transaction;
	// CtrSchedReorders counts those that bypassed an older queued request
	// (FR-FCFS row-hit-first and starvation-guard reordering). Domain 0.
	CtrSchedPicks
	CtrSchedReorders
	// Secure-arbiter slot accounting (domain 0): slots examined, slots
	// that issued, and owned slots wasted for lack of an eligible request.
	CtrSlotsSeen
	CtrSlotsUsed
	CtrSlotsWasted
	// Shaper emission counters per protected domain.
	CtrShaperForwarded
	CtrShaperFakes
	CtrShaperRejected
	// Core counters per domain.
	CtrRetired
	CtrROBStallCycles
	// Fleet fabric counters (domain 0): shard outcomes and durability
	// events across the worker pool.
	CtrFleetShardsDone
	CtrFleetShardsFailed
	CtrFleetRetries
	CtrFleetCheckpoints
	CtrFleetResumes
	// Lease-based multi-process coordination (domain 0): expired-lease
	// steals, zombie commits refused by the fencing epoch, and injected
	// storage faults absorbed by the durable-IO layer.
	CtrFleetLeaseSteals
	CtrFleetFencedCommits
	CtrFleetFSFaults

	numCounters
)

// counterNames indexes Counter -> stable snake-case name (used by the
// text summary and any machine-readable dump).
var counterNames = [numCounters]string{
	CtrRowHits:            "row_hits",
	CtrRowMisses:          "row_misses",
	CtrRowConflicts:       "row_conflicts",
	CtrPrecharges:         "precharges",
	CtrRefreshes:          "refreshes",
	CtrRefreshStallCycles: "refresh_stall_cycles",
	CtrBusBusyCycles:      "bus_busy_cycles",
	CtrBankBusyCycles:     "bank_busy_cycles",
	CtrIssuedReads:        "issued_reads",
	CtrIssuedWrites:       "issued_writes",
	CtrIssuedFakes:        "issued_fakes",
	CtrSchedPicks:         "sched_picks",
	CtrSchedReorders:      "sched_reorders",
	CtrSlotsSeen:          "slots_seen",
	CtrSlotsUsed:          "slots_used",
	CtrSlotsWasted:        "slots_wasted",
	CtrShaperForwarded:    "shaper_forwarded",
	CtrShaperFakes:        "shaper_fakes",
	CtrShaperRejected:     "shaper_rejected",
	CtrRetired:            "retired",
	CtrROBStallCycles:     "rob_stall_cycles",
	CtrFleetShardsDone:    "fleet_shards_done",
	CtrFleetShardsFailed:  "fleet_shards_failed",
	CtrFleetRetries:       "fleet_retries",
	CtrFleetCheckpoints:   "fleet_checkpoints",
	CtrFleetResumes:       "fleet_resumes",
	CtrFleetLeaseSteals:   "fleet_lease_steals",
	CtrFleetFencedCommits: "fleet_fenced_commits",
	CtrFleetFSFaults:      "fleet_fs_faults",
}

// String returns the counter's stable name.
func (c Counter) String() string {
	if int(c) < len(counterNames) {
		return counterNames[c]
	}
	return "unknown_counter"
}

// counterHelp indexes Counter -> one-line # HELP text for the
// Prometheus exposition.
var counterHelp = [numCounters]string{
	CtrRowHits:            "DRAM row-buffer hits per requesting domain.",
	CtrRowMisses:          "DRAM row-buffer misses (closed row) per requesting domain.",
	CtrRowConflicts:       "DRAM row-buffer conflicts (wrong row open) per requesting domain.",
	CtrPrecharges:         "PRE commands issued (conflict plus auto-precharge).",
	CtrRefreshes:          "Refresh windows performed (domain 0).",
	CtrRefreshStallCycles: "Cycles transactions were displaced by refresh windows (domain 0).",
	CtrBusBusyCycles:      "Data-bus burst occupancy cycles per domain.",
	CtrBankBusyCycles:     "Bank occupancy cycles (start to data done) per domain.",
	CtrIssuedReads:        "Read transactions issued by the controller per domain.",
	CtrIssuedWrites:       "Write transactions issued by the controller per domain.",
	CtrIssuedFakes:        "Fake (camouflage) transactions issued per domain.",
	CtrSchedPicks:         "Scheduling decisions that issued a transaction (domain 0).",
	CtrSchedReorders:      "Scheduling decisions that bypassed an older queued request (domain 0).",
	CtrSlotsSeen:          "Secure-arbiter slots examined (domain 0).",
	CtrSlotsUsed:          "Secure-arbiter slots that issued (domain 0).",
	CtrSlotsWasted:        "Owned secure-arbiter slots wasted for lack of an eligible request (domain 0).",
	CtrShaperForwarded:    "Real requests forwarded by the shaper per protected domain.",
	CtrShaperFakes:        "Fake requests emitted by the shaper per protected domain.",
	CtrShaperRejected:     "Requests rejected by the shaper's admission queue per protected domain.",
	CtrRetired:            "Instructions retired per core domain.",
	CtrROBStallCycles:     "Cycles the ROB head was stalled on memory per core domain.",
	CtrFleetShardsDone:    "Fleet shards completed across the worker pool (domain 0).",
	CtrFleetShardsFailed:  "Fleet shards that exhausted their retries (domain 0).",
	CtrFleetRetries:       "Fleet shard attempts retried after a failure (domain 0).",
	CtrFleetCheckpoints:   "Durable per-shard checkpoints cut by fleet workers (domain 0).",
	CtrFleetResumes:       "Fleet shard executions resumed from a checkpoint frame (domain 0).",
	CtrFleetLeaseSteals:   "Expired shard leases stolen from dead or stalled owners (domain 0).",
	CtrFleetFencedCommits: "Zombie result commits refused by the lease fencing epoch (domain 0).",
	CtrFleetFSFaults:      "Injected storage faults absorbed by the fleet's durable-IO layer (domain 0).",
}

// Help returns the counter's # HELP text.
func (c Counter) Help() string {
	if int(c) < len(counterHelp) {
		return counterHelp[c]
	}
	return "Unknown counter."
}

// NumCounters is the size of the counter catalog.
const NumCounters = int(numCounters)

// Hist identifies one per-domain log-bucketed histogram.
type Hist uint8

const (
	// HistReqLatency is transaction latency (arrival to data done).
	HistReqLatency Hist = iota
	// HistQueueWait is transaction queueing delay (arrival to issue).
	HistQueueWait
	// HistQueueDepth is the controller transaction-queue occupancy,
	// sampled every tick (domain 0).
	HistQueueDepth
	// HistShaperQueue is the shaper private-queue occupancy, sampled
	// every tick per protected domain.
	HistShaperQueue
	// HistEgressQueue is the shaped egress staging-queue peak occupancy,
	// sampled every tick per protected domain.
	HistEgressQueue
	// HistNodeWait is rDAG node service time: emission of a slot to its
	// completion callback, per protected domain.
	HistNodeWait
	// HistMLP is memory-level parallelism: outstanding demand reads,
	// sampled every cycle per core domain.
	HistMLP

	numHists
)

var histNames = [numHists]string{
	HistReqLatency:  "req_latency",
	HistQueueWait:   "queue_wait",
	HistQueueDepth:  "queue_depth",
	HistShaperQueue: "shaper_queue_occupancy",
	HistEgressQueue: "egress_queue_occupancy",
	HistNodeWait:    "rdag_node_wait",
	HistMLP:         "mlp",
}

// String returns the histogram's stable name.
func (h Hist) String() string {
	if int(h) < len(histNames) {
		return histNames[h]
	}
	return "unknown_hist"
}

// histHelp indexes Hist -> one-line # HELP text for the Prometheus
// exposition.
var histHelp = [numHists]string{
	HistReqLatency:  "Transaction latency in cycles, arrival to data done (log2 buckets).",
	HistQueueWait:   "Transaction queueing delay in cycles, arrival to issue (log2 buckets).",
	HistQueueDepth:  "Controller transaction-queue occupancy sampled every tick (domain 0).",
	HistShaperQueue: "Shaper private-queue occupancy sampled every tick per protected domain.",
	HistEgressQueue: "Shaped egress staging-queue peak occupancy sampled every tick per protected domain.",
	HistNodeWait:    "rDAG node service time in cycles, slot emission to completion per protected domain.",
	HistMLP:         "Outstanding demand reads sampled every cycle per core domain.",
}

// Help returns the histogram's # HELP text.
func (h Hist) Help() string {
	if int(h) < len(histHelp) {
		return histHelp[h]
	}
	return "Unknown histogram."
}

// NumHists is the size of the histogram catalog.
const NumHists = int(numHists)

// NumBuckets is the bucket count of every histogram: bucket 0 holds the
// value 0 and bucket i (1 <= i <= 64) holds values in [2^(i-1), 2^i).
const NumBuckets = 65

// Bucket returns the histogram bucket index of v.
func Bucket(v uint64) int { return bits.Len64(v) }

// BucketLow returns the smallest value belonging to bucket b.
func BucketLow(b int) uint64 {
	if b <= 0 {
		return 0
	}
	return 1 << (b - 1)
}

// Registry collects the counters and histograms of one simulated machine
// (or of several, when shared across runs of a sweep). The zero domain is
// reserved for system-wide metrics; construct it with one slot per
// security domain plus that zero slot. All methods are safe on a nil
// receiver, where they are no-ops.
type Registry struct {
	domains  int
	counters []uint64 // [counter*domains + domain]
	hists    []uint64 // [(hist*domains + domain)*NumBuckets + bucket]
}

// NewRegistry builds a registry for domain indices 0..domains-1 (pass the
// core count plus one: domain 0 is the system-wide slot).
func NewRegistry(domains int) *Registry {
	if domains < 1 {
		domains = 1
	}
	return &Registry{
		domains:  domains,
		counters: make([]uint64, NumCounters*domains),
		hists:    make([]uint64, NumHists*domains*NumBuckets),
	}
}

// Domains returns the number of domain slots (including slot 0).
func (r *Registry) Domains() int {
	if r == nil {
		return 0
	}
	return r.domains
}

// clamp maps out-of-range domains onto the unattributed slot 0 so a
// miswired caller can never corrupt memory.
func (r *Registry) clamp(d int) int {
	if d < 0 || d >= r.domains {
		return 0
	}
	return d
}

// Inc adds one to counter c of domain d. No-op on nil.
func (r *Registry) Inc(c Counter, d int) {
	if r == nil {
		return
	}
	atomic.AddUint64(&r.counters[int(c)*r.domains+r.clamp(d)], 1)
}

// Add adds n to counter c of domain d. No-op on nil.
func (r *Registry) Add(c Counter, d int, n uint64) {
	if r == nil {
		return
	}
	atomic.AddUint64(&r.counters[int(c)*r.domains+r.clamp(d)], n)
}

// Observe records value v into histogram h of domain d. No-op on nil.
func (r *Registry) Observe(h Hist, d int, v uint64) {
	if r == nil {
		return
	}
	base := (int(h)*r.domains + r.clamp(d)) * NumBuckets
	atomic.AddUint64(&r.hists[base+Bucket(v)], 1)
}

// Counter returns the current value of counter c for domain d.
func (r *Registry) Counter(c Counter, d int) uint64 {
	if r == nil {
		return 0
	}
	return atomic.LoadUint64(&r.counters[int(c)*r.domains+r.clamp(d)])
}

// CounterTotal returns counter c summed over all domains.
func (r *Registry) CounterTotal(c Counter) uint64 {
	if r == nil {
		return 0
	}
	var sum uint64
	for d := 0; d < r.domains; d++ {
		sum += atomic.LoadUint64(&r.counters[int(c)*r.domains+d])
	}
	return sum
}

// Snapshot copies the registry's current state. The copy is a plain value
// safe to keep, diff and serialize; it observes each cell atomically (the
// snapshot as a whole is not a single atomic cut, which is fine for
// monotonic counters).
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	s := &Snapshot{
		Domains:  r.domains,
		Counters: make([]uint64, len(r.counters)),
		Hists:    make([]uint64, len(r.hists)),
	}
	for i := range r.counters {
		s.Counters[i] = atomic.LoadUint64(&r.counters[i])
	}
	for i := range r.hists {
		s.Hists[i] = atomic.LoadUint64(&r.hists[i])
	}
	return s
}

// Snapshot is an immutable copy of a Registry, used for Result.Metrics,
// interval deltas and the text summary.
type Snapshot struct {
	Domains  int
	Counters []uint64
	Hists    []uint64
}

// Counter returns counter c of domain d (0 for out-of-range domains).
func (s *Snapshot) Counter(c Counter, d int) uint64 {
	if s == nil || d < 0 || d >= s.Domains {
		return 0
	}
	return s.Counters[int(c)*s.Domains+d]
}

// CounterTotal sums counter c over all domains.
func (s *Snapshot) CounterTotal(c Counter) uint64 {
	if s == nil {
		return 0
	}
	var sum uint64
	for d := 0; d < s.Domains; d++ {
		sum += s.Counters[int(c)*s.Domains+d]
	}
	return sum
}

// HistBuckets returns the bucket counts of histogram h for domain d
// (nil for out-of-range domains).
func (s *Snapshot) HistBuckets(h Hist, d int) []uint64 {
	if s == nil || d < 0 || d >= s.Domains {
		return nil
	}
	base := (int(h)*s.Domains + d) * NumBuckets
	return s.Hists[base : base+NumBuckets]
}

// HistTotal returns the number of observations in histogram h, domain d.
func (s *Snapshot) HistTotal(h Hist, d int) uint64 {
	var sum uint64
	for _, n := range s.HistBuckets(h, d) {
		sum += n
	}
	return sum
}

// HistQuantile returns the lower bound of the bucket containing quantile
// q (0 < q <= 1) of histogram h, domain d, and false when empty.
func (s *Snapshot) HistQuantile(h Hist, d int, q float64) (uint64, bool) {
	buckets := s.HistBuckets(h, d)
	total := s.HistTotal(h, d)
	if total == 0 {
		return 0, false
	}
	// The q-quantile is the ceil(q*n)-th smallest observation, so a
	// median over three samples is the second, not the first.
	target := uint64(math.Ceil(q * float64(total)))
	if target == 0 {
		target = 1
	}
	if target > total {
		target = total
	}
	var seen uint64
	for b, n := range buckets {
		seen += n
		if seen >= target {
			return BucketLow(b), true
		}
	}
	return BucketLow(NumBuckets - 1), true
}

// Sub returns the element-wise difference s - prev, for measuring a
// window out of cumulative state. prev may be nil (returns a copy of s);
// the two snapshots must come from the same registry shape.
func (s *Snapshot) Sub(prev *Snapshot) *Snapshot {
	if s == nil {
		return nil
	}
	out := &Snapshot{
		Domains:  s.Domains,
		Counters: append([]uint64(nil), s.Counters...),
		Hists:    append([]uint64(nil), s.Hists...),
	}
	if prev == nil {
		return out
	}
	for i := range out.Counters {
		if i < len(prev.Counters) {
			out.Counters[i] -= prev.Counters[i]
		}
	}
	for i := range out.Hists {
		if i < len(prev.Hists) {
			out.Hists[i] -= prev.Hists[i]
		}
	}
	return out
}
