package victim

import (
	"fmt"
	"math/rand"

	"dagguise/internal/trace"
)

// DNAConfig sizes the DNA sequence-matching computation (modelled on
// mrsFAST-style k-mer hash-table alignment).
type DNAConfig struct {
	// K is the k-mer (substring) length.
	K int
	// Buckets is the hash-table bucket count (power of two).
	Buckets int
	// NodeBytes is the size of one chain node (k-mer + position + next).
	NodeBytes int
	// ComputePerKmer is the instruction cost of extracting and hashing
	// one k-mer of the private sequence.
	ComputePerKmer int
	// Base is the base address of the hash table.
	Base uint64
}

// DefaultDNA returns the configuration used by the evaluation: a 64K
// bucket table over a long public sequence, several MiB of chain nodes.
func DefaultDNA() DNAConfig {
	return DNAConfig{K: 20, Buckets: 1 << 16, NodeBytes: 64, ComputePerKmer: 40, Base: 0x4000_0000}
}

// Validate checks the configuration.
func (c DNAConfig) Validate() error {
	if c.K <= 0 {
		return fmt.Errorf("victim: dna k must be positive")
	}
	if c.Buckets <= 0 || c.Buckets&(c.Buckets-1) != 0 {
		return fmt.Errorf("victim: dna buckets must be a positive power of two, got %d", c.Buckets)
	}
	if c.NodeBytes <= 0 {
		return fmt.Errorf("victim: dna node size must be positive")
	}
	return nil
}

// dnaIndex is the public-sequence k-mer hash table.
type dnaIndex struct {
	cfg      DNAConfig
	buckets  [][]indexNode // per-bucket chains
	nodeBase uint64
	nodeOff  [][]int // flat node index per bucket position
}

type indexNode struct {
	kmer string
	pos  int
}

// BuildIndex splits the public sequence into overlapping k-mers and stores
// them in a chained hash table, mirroring the alignment tool's
// preprocessing. The index layout (bucket array + node arena) defines the
// addresses the private-sequence probes will touch.
func BuildIndex(public string, cfg DNAConfig) (*dnaIndex, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(public) < cfg.K {
		return nil, fmt.Errorf("victim: public sequence shorter than k")
	}
	idx := &dnaIndex{
		cfg:      cfg,
		buckets:  make([][]indexNode, cfg.Buckets),
		nodeBase: cfg.Base + uint64(cfg.Buckets*8),
	}
	for i := 0; i+cfg.K <= len(public); i += cfg.K {
		kmer := public[i : i+cfg.K]
		h := fnv1a(kmer) & uint64(cfg.Buckets-1)
		idx.buckets[h] = append(idx.buckets[h], indexNode{kmer: kmer, pos: i})
	}
	// Assign flat node arena offsets (chains are contiguous per bucket,
	// as an alignment tool would lay them out after build).
	idx.nodeOff = make([][]int, cfg.Buckets)
	next := 0
	for b, chain := range idx.buckets {
		offs := make([]int, len(chain))
		for i := range chain {
			offs[i] = next
			next++
		}
		idx.nodeOff[b] = offs
	}
	return idx, nil
}

// fnv1a hashes a string with FNV-1a.
func fnv1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Align matches every k-mer of the private sequence against the index,
// recording the memory trace of the probes: one load of the bucket head,
// then a dependent load per chain node (pointer chasing). The number of
// matches is returned so tests can confirm real computation. The sequence
// of buckets probed — and the chain lengths walked — is a direct function
// of the private sequence.
func (idx *dnaIndex) Align(private string) (*trace.Slice, int, error) {
	cfg := idx.cfg
	if len(private) < cfg.K {
		return nil, 0, fmt.Errorf("victim: private sequence shorter than k")
	}
	rec := trace.NewRecorder(false)
	matches := 0
	for i := 0; i+cfg.K <= len(private); i++ {
		kmer := private[i : i+cfg.K]
		rec.Compute(cfg.ComputePerKmer)
		h := fnv1a(kmer) & uint64(cfg.Buckets-1)
		rec.Load(cfg.Base + h*8) // bucket head pointer
		for j, node := range idx.buckets[h] {
			rec.LoadDep(idx.nodeBase + uint64(idx.nodeOff[h][j]*cfg.NodeBytes))
			rec.Compute(cfg.K / 4) // k-mer comparison
			if node.kmer == kmer {
				matches++
			}
		}
	}
	return rec.Trace(), matches, nil
}

const dnaAlphabet = "ACGT"

// RandomDNA generates a random DNA sequence of length n.
func RandomDNA(seed int64, n int) string {
	rng := rand.New(rand.NewSource(seed))
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = dnaAlphabet[rng.Intn(4)]
	}
	return string(buf)
}

// MutatedDNA copies base and mutates each position with the given rate,
// producing a private sequence that partially matches the public one (as
// real reads do).
func MutatedDNA(base string, seed int64, rate float64) string {
	rng := rand.New(rand.NewSource(seed))
	buf := []byte(base)
	for i := range buf {
		if rng.Float64() < rate {
			buf[i] = dnaAlphabet[rng.Intn(4)]
		}
	}
	return string(buf)
}

// DNATrace is the simulator convenience: it builds the public index once
// per config and aligns a private sequence derived from the secret seed.
func DNATrace(secretSeed int64, cfg DNAConfig) (*trace.Slice, error) {
	public := RandomDNA(2, 400_000)
	idx, err := BuildIndex(public, cfg)
	if err != nil {
		return nil, err
	}
	// A long private read: the probe stream walks tens of thousands of
	// distinct buckets and chain nodes (several MiB), so the alignment
	// exercises memory rather than re-hitting the caches.
	private := MutatedDNA(public[:40_000], secretSeed, 0.05)
	tr, _, err := idx.Align(private)
	return tr, err
}
