package victim

import (
	"math"
	"testing"

	"dagguise/internal/mem"
)

func TestDocDistComputesRealDistance(t *testing.T) {
	cfg := DocDistConfig{Vocabulary: 16, EntryBytes: 8, ComputePerWord: 4, Base: 0}
	ref := make([]float64, 16)
	ref[3] = 2 // reference contains word 3 twice
	input := []int{3, 5, 5}
	_, dist, err := DocDist(input, ref, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// counts: w3=1, w5=2. distance = sqrt((1-2)^2 + (2-0)^2) = sqrt(5).
	if math.Abs(dist-math.Sqrt(5)) > 1e-9 {
		t.Fatalf("distance = %f, want sqrt(5)", dist)
	}
}

func TestDocDistTraceLeaksInput(t *testing.T) {
	cfg := DocDistConfig{Vocabulary: 64, EntryBytes: 8, ComputePerWord: 4, Base: 0}
	ref := make([]float64, 64)
	trA, _, err := DocDist([]int{1, 2, 3}, ref, cfg)
	if err != nil {
		t.Fatal(err)
	}
	trB, _, _ := DocDist([]int{9, 9, 9}, ref, cfg)
	if len(trA.Ops) != len(trB.Ops) {
		t.Fatal("same-length docs should give same-length traces")
	}
	// The counting-phase accesses must differ (that's the leak DAGguise
	// hides); the zeroing and distance phases are input-independent.
	differ := false
	for i := range trA.Ops {
		if trA.Ops[i].Addr != trB.Ops[i].Addr {
			differ = true
			break
		}
	}
	if !differ {
		t.Fatal("counting-phase addresses identical for different documents")
	}
}

func TestDocDistRejectsBadInput(t *testing.T) {
	cfg := DocDistConfig{Vocabulary: 8, EntryBytes: 8}
	if _, _, err := DocDist([]int{99}, make([]float64, 8), cfg); err == nil {
		t.Fatal("out-of-vocabulary word accepted")
	}
	if _, _, err := DocDist(nil, make([]float64, 4), cfg); err == nil {
		t.Fatal("mismatched reference vector accepted")
	}
	if _, _, err := DocDist(nil, nil, DocDistConfig{}); err == nil {
		t.Fatal("zero config accepted")
	}
}

func TestDocDistTraceHasWritesAndReads(t *testing.T) {
	tr, err := DocDistTrace(5, DefaultDocDist())
	if err != nil {
		t.Fatal(err)
	}
	var reads, writes int
	for _, op := range tr.Ops {
		if op.Kind == mem.Write {
			writes++
		} else {
			reads++
		}
	}
	if reads == 0 || writes == 0 {
		t.Fatalf("trace reads=%d writes=%d", reads, writes)
	}
}

func TestRandomDocZipfian(t *testing.T) {
	doc := RandomDoc(1, 10000, 1000)
	counts := map[int]int{}
	for _, w := range doc {
		if w < 0 || w >= 1000 {
			t.Fatalf("word %d outside vocabulary", w)
		}
		counts[w]++
	}
	// Zipf: the most common word should dominate.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 1000 {
		t.Fatalf("most common word appears %d times; expected Zipf head", max)
	}
}

func TestDNAConfigValidate(t *testing.T) {
	bad := []DNAConfig{
		{K: 0, Buckets: 8, NodeBytes: 64},
		{K: 4, Buckets: 6, NodeBytes: 64},
		{K: 4, Buckets: 8, NodeBytes: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestDNAAlignFindsPlantedMatches(t *testing.T) {
	cfg := DNAConfig{K: 4, Buckets: 64, NodeBytes: 64, ComputePerKmer: 2, Base: 0}
	public := "ACGTACGTTTTTGGGGCCCC"
	idx, err := BuildIndex(public, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Private sequence containing the public k-mer "ACGT" once.
	_, matches, err := idx.Align("AAACGTAA")
	if err != nil {
		t.Fatal(err)
	}
	if matches == 0 {
		t.Fatal("planted k-mer not found")
	}
	// A sequence sharing nothing with the public one.
	_, none, _ := idx.Align("AAAAAAAA")
	if none != 0 {
		// "AAAA" could collide only if present in public; it is not.
		t.Fatalf("unexpected matches: %d", none)
	}
}

func TestDNATraceLeaksPrivateSequence(t *testing.T) {
	cfg := DNAConfig{K: 4, Buckets: 256, NodeBytes: 64, ComputePerKmer: 2, Base: 0}
	idx, err := BuildIndex(RandomDNA(1, 4096), cfg)
	if err != nil {
		t.Fatal(err)
	}
	trA, _, _ := idx.Align(RandomDNA(10, 64))
	trB, _, _ := idx.Align(RandomDNA(11, 64))
	same := len(trA.Ops) == len(trB.Ops)
	if same {
		for i := range trA.Ops {
			if trA.Ops[i].Addr != trB.Ops[i].Addr {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different private sequences produced identical probe traces")
	}
}

func TestDNAChainProbesAreDependent(t *testing.T) {
	cfg := DNAConfig{K: 4, Buckets: 2, NodeBytes: 64, ComputePerKmer: 2, Base: 0}
	// Two buckets force long chains.
	idx, err := BuildIndex(RandomDNA(3, 1024), cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, _, _ := idx.Align("ACGTACGT")
	deps := 0
	for _, op := range tr.Ops {
		if op.Dep > 0 {
			deps++
		}
	}
	if deps == 0 {
		t.Fatal("no dependent chain probes recorded")
	}
}

func TestMutatedDNA(t *testing.T) {
	base := RandomDNA(5, 1000)
	mut := MutatedDNA(base, 6, 0.1)
	if len(mut) != len(base) {
		t.Fatal("length changed")
	}
	diff := 0
	for i := range base {
		if base[i] != mut[i] {
			diff++
		}
	}
	if diff == 0 || diff > 300 {
		t.Fatalf("mutations = %d of 1000 at rate 0.1", diff)
	}
}

func TestDNATraceConvenience(t *testing.T) {
	cfg := DNAConfig{K: 8, Buckets: 1 << 10, NodeBytes: 64, ComputePerKmer: 8, Base: 0x1000}
	tr, err := DNATrace(3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Ops) == 0 {
		t.Fatal("empty DNA trace")
	}
}

func TestBuildIndexErrors(t *testing.T) {
	cfg := DNAConfig{K: 30, Buckets: 8, NodeBytes: 64}
	if _, err := BuildIndex("SHORT", cfg); err == nil {
		t.Fatal("short public sequence accepted")
	}
	idx, err := BuildIndex(RandomDNA(1, 100), DNAConfig{K: 10, Buckets: 8, NodeBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := idx.Align("ACG"); err == nil {
		t.Fatal("short private sequence accepted")
	}
}
