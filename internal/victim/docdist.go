// Package victim implements the two security-sensitive applications of the
// paper's evaluation as real algorithms whose data-structure accesses are
// recorded into traces: Document Distance (DocDist) and DNA sequence
// matching. Their memory access patterns are secret-dependent — which is
// exactly the leak DAGguise exists to hide — so the recorded traces double
// as transmitters in the attack experiments.
package victim

import (
	"fmt"
	"math"
	"math/rand"

	"dagguise/internal/trace"
)

// DocDistConfig sizes the document-distance computation.
type DocDistConfig struct {
	// Vocabulary is the number of distinct words (the feature vector
	// length).
	Vocabulary int
	// EntryBytes is the size of one feature-vector entry.
	EntryBytes int
	// ComputePerWord is the instruction cost of tokenising and hashing
	// one word during the counting phase.
	ComputePerWord int
	// ComputePerEntry is the instruction cost of one distance-phase
	// element (load/convert/subtract/multiply/accumulate).
	ComputePerEntry int
	// Base is the base address of the data arrays.
	Base uint64

	// DocsPerTrace is how many private documents one recorded trace
	// processes (a document-distance service handles a stream of them).
	DocsPerTrace int
	// WordsPerDoc is the length of each private document.
	WordsPerDoc int
	// ArenaSlots is the number of input-vector buffers the service's
	// allocator rotates through. A realistic allocator does not reuse
	// the same hot buffer forever, so the distance phase streams through
	// memory rather than re-hitting the caches.
	ArenaSlots int
	// DictBuckets is the size of the word -> ID hash dictionary the
	// tokenizer probes per input word. Hot (Zipf-head) buckets stay
	// cached; tail words take random, latency-bound misses.
	DictBuckets int
}

// DefaultDocDist returns the configuration used by the evaluation: 8K-word
// vocabulary (64 KiB feature vectors) and sixteen documents per trace over
// a sixteen-slot input arena, so one trace loop touches over 1 MiB of
// input vectors and the distance phase streams past the L3 slice. The
// resulting standalone bandwidth demand sits near the saturation point of
// the paper's Figure 7 curve, and one loop is short enough that the
// default measurement windows average over all program phases.
func DefaultDocDist() DocDistConfig {
	return DocDistConfig{
		Vocabulary:      32768,
		EntryBytes:      8,
		ComputePerWord:  24,
		ComputePerEntry: 40,
		Base:            0x1000_0000,
		DocsPerTrace:    8,
		WordsPerDoc:     1500,
		ArenaSlots:      8,
		DictBuckets:     1 << 18, // 2 MiB dictionary
	}
}

// Validate checks the configuration.
func (c DocDistConfig) Validate() error {
	if c.Vocabulary <= 0 || c.EntryBytes <= 0 {
		return fmt.Errorf("victim: docdist needs positive vocabulary and entry size")
	}
	return nil
}

// DocDist runs the document-distance computation on one private input
// document against a public reference feature vector and records the
// memory trace. It returns the recorded trace and the computed distance
// (used by tests to check the algorithm is real, not a mock).
//
// The access pattern of the counting phase — which feature-vector entries
// are read and incremented, in input order — is a direct function of the
// private document (§6.1).
func DocDist(input []int, refVec []float64, cfg DocDistConfig) (*trace.Slice, float64, error) {
	if err := cfg.Validate(); err != nil {
		return nil, 0, err
	}
	if len(refVec) != cfg.Vocabulary {
		return nil, 0, fmt.Errorf("victim: reference vector length %d != vocabulary %d", len(refVec), cfg.Vocabulary)
	}
	rec := trace.NewRecorder(false)
	inBase := cfg.Base
	refBase := cfg.Base + uint64(cfg.Vocabulary*cfg.EntryBytes)
	dist, err := docDistInto(rec, input, refVec, cfg, inBase, refBase)
	if err != nil {
		return nil, 0, err
	}
	return rec.Trace(), dist, nil
}

// docDistInto is the instrumented algorithm body: count the private
// document's word frequencies into the input vector at inBase, then
// compute the Euclidean distance against the reference vector at refBase.
func docDistInto(rec *trace.Recorder, input []int, refVec []float64, cfg DocDistConfig, inBase, refBase uint64) (float64, error) {
	// Zero the freshly allocated input vector (make([]float64, V)): a
	// sequential store sweep over the buffer.
	counts := make([]float64, cfg.Vocabulary)
	for i := 0; i < cfg.Vocabulary; i++ {
		rec.Compute(1)
		rec.Store(inBase + uint64(i*cfg.EntryBytes))
	}
	// The dictionary lives above the vector arena; its layout is part of
	// the service, not per-document.
	dictBase := cfg.Base + uint64((2+cfg.ArenaSlots)*cfg.Vocabulary*cfg.EntryBytes)
	for _, w := range input {
		if w < 0 || w >= cfg.Vocabulary {
			return 0, fmt.Errorf("victim: word id %d outside vocabulary", w)
		}
		rec.Compute(cfg.ComputePerWord)
		if cfg.DictBuckets > 0 {
			// Tokenize: hash the word and probe the dictionary bucket.
			bucket := (uint64(w) * 2654435761) % uint64(cfg.DictBuckets)
			rec.LoadDep(dictBase + bucket*8)
			rec.Compute(6)
		}
		addr := inBase + uint64(w*cfg.EntryBytes)
		rec.Load(addr)  // read counter
		rec.Store(addr) // increment
		counts[w]++
	}
	perEntry := cfg.ComputePerEntry
	if perEntry <= 0 {
		perEntry = 20
	}
	var sum float64
	for i := 0; i < cfg.Vocabulary; i++ {
		rec.Compute(perEntry)
		rec.Load(refBase + uint64(i*cfg.EntryBytes))
		rec.Load(inBase + uint64(i*cfg.EntryBytes))
		d := counts[i] - refVec[i]
		sum += d * d
	}
	return math.Sqrt(sum), nil
}

// RandomDoc generates a document of n words drawn from a Zipf-like
// distribution over the vocabulary (natural texts are Zipfian; this
// matters because it concentrates accesses on hot counters).
func RandomDoc(seed int64, n, vocabulary int) []int {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, 1.2, 1.0, uint64(vocabulary-1))
	doc := make([]int, n)
	for i := range doc {
		doc[i] = int(z.Uint64())
	}
	return doc
}

// ReferenceVector builds a public reference feature vector from a
// reference document drawn with the given seed.
func ReferenceVector(seed int64, words, vocabulary int) []float64 {
	vec := make([]float64, vocabulary)
	for _, w := range RandomDoc(seed, words, vocabulary) {
		vec[w]++
	}
	return vec
}

// DocDistTrace records a document-distance *service*: it processes
// cfg.DocsPerTrace private documents derived from the secret seed, each
// counted into a fresh input-vector buffer from a rotating arena, then
// compared against the shared (cache-hot) reference vector. This is the
// trace the performance experiments loop.
func DocDistTrace(secretSeed int64, cfg DocDistConfig) (*trace.Slice, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	docs := cfg.DocsPerTrace
	if docs <= 0 {
		docs = 1
	}
	words := cfg.WordsPerDoc
	if words <= 0 {
		words = 1500
	}
	slots := cfg.ArenaSlots
	if slots <= 0 {
		slots = 1
	}
	vecBytes := uint64(cfg.Vocabulary * cfg.EntryBytes)
	refBase := cfg.Base
	arena := cfg.Base + vecBytes // arena of input vectors after the reference
	ref := ReferenceVector(1, 4*words, cfg.Vocabulary)
	rec := trace.NewRecorder(false)
	for d := 0; d < docs; d++ {
		doc := RandomDoc(secretSeed+int64(d)*257, words, cfg.Vocabulary)
		inBase := arena + uint64(d%slots)*vecBytes
		if _, err := docDistInto(rec, doc, ref, cfg, inBase, refBase); err != nil {
			return nil, err
		}
	}
	return rec.Trace(), nil
}
