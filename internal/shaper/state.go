package shaper

import (
	"fmt"
	"sort"

	"dagguise/internal/mem"
	"dagguise/internal/rdag"
	"dagguise/internal/rng"
)

// PendingSave mirrors one private-queue entry. The flat bank is derived
// from the address and recomputed on restore.
type PendingSave struct {
	Req      mem.Request `json:"req"`
	Enqueued uint64      `json:"enqueued"`
}

// TokenSave maps one emitted request ID to its rDAG token.
type TokenSave struct {
	ID    uint64 `json:"id"`
	Token int    `json:"token"`
}

// RowSave records the row this shaper last opened in one flat bank.
type RowSave struct {
	Bank int    `json:"bank"`
	Row  uint64 `json:"row"`
}

// State is the shaper's full mutable state, including the defense-rDAG
// driver position and the fake-address PRNG position. Map-backed fields are
// stored as sorted pair lists so the serialized form is deterministic.
type State struct {
	Queue   []PendingSave    `json:"queue,omitempty"`
	Tokens  []TokenSave      `json:"tokens,omitempty"`
	LastRow []RowSave        `json:"last_row,omitempty"`
	Stats   Stats            `json:"stats"`
	Rand    rng.State        `json:"rand"`
	Driver  rdag.DriverState `json:"driver"`
}

// SaveState captures the shaper's full mutable state. The driver must be
// checkpointable (both rdag drivers are).
func (s *Shaper) SaveState() (State, error) {
	drv, ok := s.driver.(rdag.StatefulDriver)
	if !ok {
		return State{}, fmt.Errorf("shaper: driver %T is not checkpointable", s.driver)
	}
	st := State{Stats: s.stats, Rand: s.rng.State(), Driver: drv.SaveState()}
	for _, p := range s.queue {
		st.Queue = append(st.Queue, PendingSave{Req: p.req, Enqueued: p.enqueued})
	}
	for id, tok := range s.tokens {
		st.Tokens = append(st.Tokens, TokenSave{ID: id, Token: tok})
	}
	sort.Slice(st.Tokens, func(i, j int) bool { return st.Tokens[i].ID < st.Tokens[j].ID })
	for bank, row := range s.lastRow {
		st.LastRow = append(st.LastRow, RowSave{Bank: bank, Row: row})
	}
	sort.Slice(st.LastRow, func(i, j int) bool { return st.LastRow[i].Bank < st.LastRow[j].Bank })
	return st, nil
}

// RestoreState overwrites the shaper's mutable state. The observability
// emit-time tracking is cleared: it is measurement-only and per-attachment.
func (s *Shaper) RestoreState(st State) error {
	drv, ok := s.driver.(rdag.StatefulDriver)
	if !ok {
		return fmt.Errorf("shaper: driver %T is not checkpointable", s.driver)
	}
	if err := drv.RestoreState(st.Driver); err != nil {
		return err
	}
	if len(st.Queue) > s.capacity {
		return fmt.Errorf("shaper: state queue depth %d exceeds capacity %d", len(st.Queue), s.capacity)
	}
	s.queue = s.queue[:0]
	for _, p := range st.Queue {
		bank := s.mapper.FlatBank(s.mapper.Decode(p.Req.Addr))
		s.queue = append(s.queue, pending{req: p.Req, bank: bank, enqueued: p.Enqueued})
	}
	s.tokens = make(map[uint64]int, len(st.Tokens))
	for _, t := range st.Tokens {
		s.tokens[t.ID] = t.Token
	}
	s.lastRow = make(map[int]uint64, len(st.LastRow))
	for _, r := range st.LastRow {
		s.lastRow[r.Bank] = r.Row
	}
	s.stats = st.Stats
	s.rng.Restore(st.Rand)
	if s.emitAt != nil {
		s.emitAt = make(map[uint64]uint64)
	}
	return nil
}
