package shaper

import (
	"fmt"

	"dagguise/internal/mem"
)

// RoutingError reports a request delivered to the wrong domain's shaper.
// Cross-domain routing must be exact: a misrouted request would let one
// domain's traffic perturb another's shaped stream, voiding the security
// argument, so the violation surfaces as a typed error for the simulation
// harness to turn into a structured failure instead of a crash.
type RoutingError struct {
	// Got is the domain tagged on the request, Want the shaper's domain.
	Got, Want mem.Domain
	// ID is the offending request's ID.
	ID uint64
}

// Error implements error.
func (e *RoutingError) Error() string {
	return fmt.Sprintf("shaper: request %d with domain %d routed to shaper for domain %d", e.ID, e.Got, e.Want)
}

// UnknownResponseError reports a completion for a request ID the shaper
// never emitted (or already completed): a protocol violation on the
// controller→shaper response path.
type UnknownResponseError struct {
	// Domain is the shaper's domain, ID the unmatched response ID.
	Domain mem.Domain
	ID     uint64
}

// Error implements error.
func (e *UnknownResponseError) Error() string {
	return fmt.Sprintf("shaper: domain %d received response for unknown request %d", e.Domain, e.ID)
}
