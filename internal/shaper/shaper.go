// Package shaper implements the DAGguise request shaper (§4.4): a proxy
// agent placed between the last-level cache and the memory controller that
// re-times a protected domain's memory requests to follow a
// secret-independent defense rDAG.
//
// The shaper buffers the domain's real requests in a private transaction
// queue. Whenever the defense rDAG prescribes a request (a bank ID and a
// read/write tag whose timing dependencies are satisfied), the shaper
// forwards a matching buffered request if one exists, and otherwise emits a
// fake request to a pseudo-random address in the prescribed bank. The
// stream leaving the shaper therefore depends only on the defense rDAG and
// on the completion times of the shaper's own requests — never on the
// victim's access pattern.
package shaper

import (
	"fmt"

	"dagguise/internal/mem"
	"dagguise/internal/obs"
	"dagguise/internal/rdag"
	"dagguise/internal/rng"
)

// IDAlloc returns fresh request IDs for fake requests. Simulations share
// one allocator across producers so IDs stay unique.
type IDAlloc func() uint64

// Stats aggregates shaper counters.
type Stats struct {
	// Forwarded counts real requests emitted downstream.
	Forwarded uint64
	// Fakes counts decoy requests emitted downstream.
	Fakes uint64
	// Enqueued counts real requests accepted into the private queue.
	Enqueued uint64
	// Rejected counts Enqueue attempts that found the queue full.
	Rejected uint64
	// DelaySum accumulates, over forwarded requests, the cycles spent
	// waiting in the private queue.
	DelaySum uint64
	// MaxQueue is the private queue's high-water mark.
	MaxQueue int
}

type pending struct {
	req      mem.Request
	bank     int
	enqueued uint64
}

// Shaper shapes one security domain's traffic to one defense rDAG.
type Shaper struct {
	domain   mem.Domain
	driver   rdag.Driver
	mapper   *mem.Mapper
	capacity int
	alloc    IDAlloc
	rng      *rng.Rand

	queue  []pending
	tokens map[uint64]int // emitted request ID -> driver token
	stats  Stats

	// Observability (nil = off). emitAt tracks emission cycles per
	// request ID for the rDAG node-wait histogram; it is only populated
	// while a registry is attached.
	mx     *obs.Registry
	tr     *obs.Tracer
	emitAt map[uint64]uint64

	rows    uint64
	columns int

	// lastRow tracks the row this shaper last opened per flat bank, for
	// the row-buffer-aware extension (§4.4): RowHitSlot must reuse it,
	// RowMissSlot must avoid it.
	lastRow map[int]uint64
}

// New builds a shaper for domain over the given defense-rDAG driver.
// capacity is the private transaction queue depth (8 entries in the
// paper's hardware evaluation). seed fixes the fake-address stream.
func New(domain mem.Domain, driver rdag.Driver, mapper *mem.Mapper, capacity int, alloc IDAlloc, seed int64) *Shaper {
	if capacity <= 0 {
		capacity = 8
	}
	geo := mapper.Geometry()
	linesPerRow := geo.RowBytes / geo.LineBytes
	// Fake requests land in a dedicated high row region so they never
	// alias application data in simulation traces.
	return &Shaper{
		domain:   domain,
		driver:   driver,
		mapper:   mapper,
		capacity: capacity,
		alloc:    alloc,
		rng:      rng.New(seed),
		tokens:   make(map[uint64]int),
		rows:     1 << 14,
		columns:  linesPerRow,
		lastRow:  make(map[int]uint64),
	}
}

// Domain returns the protected security domain.
func (s *Shaper) Domain() mem.Domain { return s.domain }

// Observe attaches an observability registry and tracer (either may be
// nil). Measurement only: the shaping decisions never consult them, so
// the emitted stream is bit-identical with and without observability.
func (s *Shaper) Observe(mx *obs.Registry, tr *obs.Tracer) {
	s.mx = mx
	s.tr = tr
	if mx != nil && s.emitAt == nil {
		s.emitAt = make(map[uint64]uint64)
	}
}

// Driver returns the defense-rDAG driver in use.
func (s *Shaper) Driver() rdag.Driver { return s.driver }

// QueueLen returns the private queue occupancy.
func (s *Shaper) QueueLen() int { return len(s.queue) }

// Full reports whether the private queue is at capacity; the producer must
// stall until space frees. A full queue leaks nothing: it is private to
// the domain and backpressure is invisible to other domains.
func (s *Shaper) Full() bool { return len(s.queue) >= s.capacity }

// Enqueue accepts a real request from the domain's LLC. It returns
// (false, nil) if the private queue is full — ordinary backpressure the
// producer retries — and a *RoutingError if the request belongs to another
// domain, a wiring violation the caller must surface.
func (s *Shaper) Enqueue(req mem.Request, now uint64) (bool, error) {
	if req.Domain != s.domain {
		return false, &RoutingError{Got: req.Domain, Want: s.domain, ID: req.ID}
	}
	if len(s.queue) >= s.capacity {
		s.stats.Rejected++
		s.mx.Inc(obs.CtrShaperRejected, int(s.domain))
		return false, nil
	}
	bank := s.mapper.FlatBank(s.mapper.Decode(req.Addr))
	s.queue = append(s.queue, pending{req: req, bank: bank, enqueued: now})
	s.stats.Enqueued++
	if len(s.queue) > s.stats.MaxQueue {
		s.stats.MaxQueue = len(s.queue)
	}
	return true, nil
}

// Tick polls the defense rDAG and returns the requests (real or fake) to
// forward to the global transaction queue this cycle.
func (s *Shaper) Tick(now uint64) []mem.Request {
	s.mx.Observe(obs.HistShaperQueue, int(s.domain), uint64(len(s.queue)))
	slots := s.driver.Poll(now)
	if len(slots) == 0 {
		return nil
	}
	out := make([]mem.Request, 0, len(slots))
	for _, slot := range slots {
		req, real := s.match(slot)
		if !real {
			req = s.fake(slot, now)
			s.stats.Fakes++
			s.mx.Inc(obs.CtrShaperFakes, int(s.domain))
			s.tr.Emit(obs.Event{Cycle: now, Comp: obs.CompShaper, Kind: obs.EvFake, Index: int32(s.domain), Domain: int32(s.domain)})
		} else {
			s.stats.Forwarded++
			s.stats.DelaySum += now - req.Issue
			s.mx.Inc(obs.CtrShaperForwarded, int(s.domain))
			s.tr.Emit(obs.Event{Cycle: now, Comp: obs.CompShaper, Kind: obs.EvReal, Index: int32(s.domain), Domain: int32(s.domain)})
		}
		if s.mx != nil {
			s.emitAt[req.ID] = now
		}
		s.lastRow[slot.Bank] = s.mapper.Decode(req.Addr).Row
		req.Issue = now
		// Strip the prefetch hint: every shaper emission must look
		// identical to the controller, or the demand/prefetch mix of the
		// victim would leak through scheduling priority.
		req.Prefetch = false
		s.tokens[req.ID] = slot.Token
		out = append(out, req)
	}
	return out
}

// rowOK checks a pending request against the slot's row relation, using
// the row this shaper last opened in the slot's bank.
func (s *Shaper) rowOK(slot rdag.Slot, row uint64) bool {
	switch slot.Row {
	case rdag.RowHitSlot:
		last, ok := s.lastRow[slot.Bank]
		return ok && row == last
	case rdag.RowMissSlot:
		last, ok := s.lastRow[slot.Bank]
		return !ok || row != last
	default:
		return true
	}
}

// match searches the private queue (oldest first) for a real request with
// the slot's bank, kind and row relation, removing and returning it. For
// row-miss slots it prefers the candidate whose row has the most queued
// requests behind it, so that subsequent row-hit slots can forward them —
// a selection that depends only on the private queue, never observable
// downstream.
func (s *Shaper) match(slot rdag.Slot) (mem.Request, bool) {
	best := -1
	bestRun := -1
	for i := range s.queue {
		p := s.queue[i]
		if p.bank != slot.Bank || p.req.Kind != slot.Kind {
			continue
		}
		row := s.mapper.Decode(p.req.Addr).Row
		if !s.rowOK(slot, row) {
			continue
		}
		if slot.Row != rdag.RowMissSlot {
			best = i
			break // oldest match
		}
		run := 0
		for j := range s.queue {
			if s.queue[j].bank == slot.Bank && s.mapper.Decode(s.queue[j].req.Addr).Row == row {
				run++
			}
		}
		if run > bestRun {
			bestRun = run
			best = i
		}
	}
	if best < 0 {
		return mem.Request{}, false
	}
	req := s.queue[best].req
	s.queue = append(s.queue[:best], s.queue[best+1:]...)
	return req, true
}

// fake builds a decoy request to the prescribed bank honouring the slot's
// row relation: a RowHitSlot fake reuses the bank's open row, a
// RowMissSlot fake picks a fresh one. The address stream is independent of
// the victim's data.
func (s *Shaper) fake(slot rdag.Slot, now uint64) mem.Request {
	var row uint64
	last, seen := s.lastRow[slot.Bank]
	if slot.Row == rdag.RowHitSlot && seen {
		row = last
	} else {
		row = uint64(s.rng.Int63n(int64(s.rows)))
		if slot.Row == rdag.RowMissSlot && seen && row == last {
			row = (row + 1) % s.rows
		}
	}
	col := s.rng.Intn(s.columns)
	return mem.Request{
		ID:     s.alloc(),
		Addr:   s.mapper.AddrForBank(slot.Bank, row, col),
		Kind:   slot.Kind,
		Domain: s.domain,
		Fake:   true,
		Issue:  now,
	}
}

// OnResponse handles a completion from the memory controller for a request
// this shaper emitted. It advances the defense rDAG and reports whether
// the response should be delivered to the core (fake responses are
// swallowed). A response for an ID the shaper never emitted is a protocol
// violation reported as *UnknownResponseError: routing must be exact.
func (s *Shaper) OnResponse(resp mem.Response, now uint64) (bool, error) {
	token, ok := s.tokens[resp.ID]
	if !ok {
		return false, &UnknownResponseError{Domain: s.domain, ID: resp.ID}
	}
	delete(s.tokens, resp.ID)
	s.driver.Complete(token, now)
	if s.mx != nil {
		if at, ok := s.emitAt[resp.ID]; ok {
			delete(s.emitAt, resp.ID)
			s.mx.Observe(obs.HistNodeWait, int(s.domain), now-at)
		}
	}
	return !resp.Fake, nil
}

// Outstanding returns the number of shaper-emitted requests currently in
// the memory system.
func (s *Shaper) Outstanding() int { return len(s.tokens) }

// Stats returns cumulative counters.
func (s *Shaper) Stats() Stats { return s.stats }

// Reset clears the shaper and its driver. Pending private-queue entries
// and in-flight token mappings are dropped, so only call this between
// simulations.
func (s *Shaper) Reset() {
	s.queue = s.queue[:0]
	s.tokens = make(map[uint64]int)
	s.lastRow = make(map[int]uint64)
	s.stats = Stats{}
	if s.emitAt != nil {
		s.emitAt = make(map[uint64]uint64)
	}
	s.driver.Reset()
}

// String describes the shaper.
func (s *Shaper) String() string {
	return fmt.Sprintf("shaper{dom=%d cap=%d}", s.domain, s.capacity)
}
