package shaper

import (
	"testing"
	"testing/quick"

	"dagguise/internal/mem"
	"dagguise/internal/rdag"
)

// rowAwareShaper: a single-sequence, single-bank template where 3 of every
// 4 requests are row hits.
func rowAwareShaper(t *testing.T) (*Shaper, *mem.Mapper) {
	t.Helper()
	m := testMapper()
	d := rdag.MustPatternDriver(rdag.Template{
		Sequences: 8, Weight: 0, Banks: 8, RowHitRatio: 0.75,
	})
	return New(1, d, m, 8, allocator(), 5), m
}

func TestRowAwareSlotsCarryRelations(t *testing.T) {
	d := rdag.MustPatternDriver(rdag.Template{Sequences: 1, Weight: 0, Banks: 1, RowHitRatio: 0.75})
	var rels []rdag.RowRelation
	now := uint64(0)
	for i := 0; i < 8; i++ {
		s := d.Poll(now)[0]
		rels = append(rels, s.Row)
		now += 10
		d.Complete(s.Token, now)
	}
	hits := 0
	for _, r := range rels {
		switch r {
		case rdag.RowHitSlot:
			hits++
		case rdag.RowAny:
			t.Fatal("row-aware template emitted a RowAny slot")
		}
	}
	if hits != 6 {
		t.Fatalf("hits = %d of 8 at ratio 0.75, relations=%v", hits, rels)
	}
}

func TestRowAwareFakesFollowPrescription(t *testing.T) {
	s, m := rowAwareShaper(t)
	// With an empty queue everything is fake; the emitted rows must obey
	// the hit/miss prescription relative to the shaper's own row state.
	lastRow := map[int]uint64{}
	now := uint64(0)
	for step := 0; step < 64; step++ {
		for _, r := range s.Tick(now) {
			c := m.Decode(r.Addr)
			fb := m.FlatBank(c)
			// Reconstruct the expected relation from the shaper's
			// observable behaviour: if a previous row exists, the
			// request either reuses it (hit) or differs (miss); both
			// must match what the template prescribes. We can't see the
			// slot here, so check consistency: a repeated row is only
			// legal if the template has hits at all.
			if prev, ok := lastRow[fb]; ok && prev == c.Row {
				// row reuse implies the template prescribes hits
			}
			lastRow[fb] = c.Row
			s.OnResponse(mem.Response{ID: r.ID, Fake: r.Fake, Domain: 1}, now)
		}
		now++
	}
	// Overall, with ratio 0.75 most fakes must reuse rows: count reuse.
	s2, m2 := rowAwareShaper(t)
	reuse, total := 0, 0
	last := map[int]uint64{}
	now = 0
	for step := 0; step < 400; step++ {
		for _, r := range s2.Tick(now) {
			c := m2.Decode(r.Addr)
			fb := m2.FlatBank(c)
			if prev, ok := last[fb]; ok {
				total++
				if prev == c.Row {
					reuse++
				}
			}
			last[fb] = c.Row
			s2.OnResponse(mem.Response{ID: r.ID, Fake: r.Fake, Domain: 1}, now)
		}
		now++
	}
	if total == 0 {
		t.Fatal("no emissions")
	}
	frac := float64(reuse) / float64(total)
	if frac < 0.70 || frac > 0.80 {
		t.Fatalf("row reuse fraction %.2f, want ~0.75", frac)
	}
}

func TestRowAwareMatchRequiresRowRelation(t *testing.T) {
	m := testMapper()
	// All-hits template on one bank: after the first (miss-started)
	// request establishes a row, only same-row requests can be real.
	d := rdag.MustPatternDriver(rdag.Template{Sequences: 8, Weight: 0, Banks: 8, RowHitRatio: 0.999})
	s := New(1, d, m, 8, allocator(), 3)

	// Establish bank 0's row via a fake.
	var bank0Row uint64
	now := uint64(0)
	for _, r := range s.Tick(now) {
		c := m.Decode(r.Addr)
		if m.FlatBank(c) == 0 {
			bank0Row = c.Row
		}
		s.OnResponse(mem.Response{ID: r.ID, Fake: r.Fake, Domain: 1}, now)
	}
	// A pending request to bank 0 in a DIFFERENT row must not be
	// forwarded on a hit slot.
	s.Enqueue(mem.Request{ID: 100, Addr: m.AddrForBank(0, bank0Row+5, 0), Kind: mem.Read, Domain: 1}, now)
	// A pending request in the SAME row must be forwarded.
	s.Enqueue(mem.Request{ID: 101, Addr: m.AddrForBank(0, bank0Row, 1), Kind: mem.Read, Domain: 1}, now)
	now++
	var forwarded []uint64
	for step := 0; step < 4; step++ {
		for _, r := range s.Tick(now) {
			if !r.Fake && m.FlatBank(m.Decode(r.Addr)) == 0 {
				forwarded = append(forwarded, r.ID)
			}
			s.OnResponse(mem.Response{ID: r.ID, Fake: r.Fake, Domain: 1}, now)
		}
		now++
	}
	if len(forwarded) == 0 || forwarded[0] != 101 {
		t.Fatalf("forwarded = %v, want the same-row request 101 first", forwarded)
	}
}

func TestRowAwareEmissionIndependence(t *testing.T) {
	// The security property with the row-aware extension: the
	// (time, bank, row) schedule leaving the shaper is independent of
	// the victim's requests. Rows of REAL requests are the victim's own,
	// so the check is on (time, bank, hit/miss relation): reconstruct it
	// from the emitted rows.
	type emissionRel struct {
		At    uint64
		Bank  int
		Reuse bool
	}
	run := func(gaps []uint8) []emissionRel {
		m := testMapper()
		d := rdag.MustPatternDriver(rdag.Template{Sequences: 4, Weight: 30, Banks: 8, RowHitRatio: 0.5})
		s := New(1, d, m, 8, allocator(), 7)
		last := map[int]uint64{}
		var log []emissionRel
		type flight struct {
			at   uint64
			resp mem.Response
		}
		var flights []flight
		nextV := uint64(0)
		vi := 0
		id := uint64(0)
		for now := uint64(0); now < 4000; now++ {
			if len(gaps) > 0 && now >= nextV && !s.Full() {
				id++
				bank := int(gaps[vi%len(gaps)]) % 8
				// Half the victim requests reuse the shaper's row to
				// exercise the hit-matching path.
				row := uint64(vi % 3)
				if r, ok := last[bank]; ok && vi%2 == 0 {
					row = r
				}
				s.Enqueue(mem.Request{ID: id, Addr: m.AddrForBank(bank, row, 0), Kind: mem.Read, Domain: 1}, now)
				nextV = now + uint64(gaps[vi%len(gaps)]%50) + 1
				vi++
			}
			for _, r := range s.Tick(now) {
				c := m.Decode(r.Addr)
				fb := m.FlatBank(c)
				prev, ok := last[fb]
				log = append(log, emissionRel{At: now, Bank: fb, Reuse: ok && prev == c.Row})
				last[fb] = c.Row
				flights = append(flights, flight{now + 60, mem.Response{ID: r.ID, Fake: r.Fake, Domain: 1}})
			}
			keep := flights[:0]
			for _, f := range flights {
				if f.at <= now {
					s.OnResponse(f.resp, now)
				} else {
					keep = append(keep, f)
				}
			}
			flights = keep
		}
		return log
	}
	base := run(nil)
	if len(base) == 0 {
		t.Fatal("no emissions")
	}
	f := func(gaps []uint8) bool {
		got := run(gaps)
		if len(got) != len(base) {
			return false
		}
		for i := range got {
			if got[i] != base[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatalf("row-aware emission schedule depends on victim pattern: %v", err)
	}
}
