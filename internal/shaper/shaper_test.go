package shaper

import (
	"errors"
	"testing"
	"testing/quick"

	"dagguise/internal/mem"
	"dagguise/internal/rdag"
)

func testMapper() *mem.Mapper {
	return mem.MustMapper(mem.Geometry{Channels: 1, Ranks: 1, Banks: 8, RowBytes: 8 << 10, LineBytes: 64, CapacityGiB: 4})
}

func allocator() IDAlloc {
	next := uint64(1 << 32)
	return func() uint64 { next++; return next }
}

func chainShaper(t *testing.T, weight uint64) (*Shaper, *mem.Mapper) {
	t.Helper()
	m := testMapper()
	d := rdag.MustPatternDriver(rdag.Template{Sequences: 1, Weight: weight, Banks: 8})
	return New(1, d, m, 8, allocator(), 42), m
}

// mustEnqueue enqueues and fails the test on a routing error, returning
// whether the queue accepted the request.
func mustEnqueue(t *testing.T, s *Shaper, req mem.Request, now uint64) bool {
	t.Helper()
	ok, err := s.Enqueue(req, now)
	if err != nil {
		t.Fatalf("enqueue: %v", err)
	}
	return ok
}

func TestShaperForwardsMatchingRequest(t *testing.T) {
	s, m := chainShaper(t, 100)
	// The first slot prescribes bank 0 (sequence 0, step 0), read.
	req := mem.Request{ID: 7, Addr: m.AddrForBank(0, 5, 3), Kind: mem.Read, Domain: 1}
	if !mustEnqueue(t, s, req, 0) {
		t.Fatal("enqueue rejected")
	}
	out := s.Tick(0)
	if len(out) != 1 {
		t.Fatalf("emitted %d requests, want 1", len(out))
	}
	if out[0].Fake || out[0].ID != 7 {
		t.Fatalf("expected real request 7, got %+v", out[0])
	}
	st := s.Stats()
	if st.Forwarded != 1 || st.Fakes != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestShaperEmitsFakeWhenNoMatch(t *testing.T) {
	s, m := chainShaper(t, 100)
	out := s.Tick(0)
	if len(out) != 1 || !out[0].Fake {
		t.Fatalf("expected one fake, got %v", out)
	}
	if got := m.FlatBank(m.Decode(out[0].Addr)); got != 0 {
		t.Fatalf("fake bank = %d, want prescribed bank 0", got)
	}
	if s.Stats().Fakes != 1 {
		t.Fatalf("fake not counted: %+v", s.Stats())
	}
}

func TestShaperBankMismatchYieldsFake(t *testing.T) {
	s, m := chainShaper(t, 100)
	// Pending request to bank 3, but the slot prescribes bank 0.
	req := mem.Request{ID: 9, Addr: m.AddrForBank(3, 0, 0), Kind: mem.Read, Domain: 1}
	mustEnqueue(t, s, req, 0)
	out := s.Tick(0)
	if len(out) != 1 || !out[0].Fake {
		t.Fatalf("expected fake for bank mismatch, got %v", out)
	}
	if s.QueueLen() != 1 {
		t.Fatal("mismatched request should stay queued")
	}
}

func TestShaperKindMismatchYieldsFake(t *testing.T) {
	s, m := chainShaper(t, 100)
	req := mem.Request{ID: 9, Addr: m.AddrForBank(0, 0, 0), Kind: mem.Write, Domain: 1}
	mustEnqueue(t, s, req, 0)
	out := s.Tick(0)
	if len(out) != 1 || !out[0].Fake || out[0].Kind != mem.Read {
		t.Fatalf("expected fake read for kind mismatch, got %v", out)
	}
}

func TestShaperBackpressure(t *testing.T) {
	s, m := chainShaper(t, 100)
	for i := 0; i < 8; i++ {
		if !mustEnqueue(t, s, mem.Request{ID: uint64(i), Addr: m.AddrForBank(1, uint64(i), 0), Domain: 1}, 0) {
			t.Fatalf("enqueue %d rejected below capacity", i)
		}
	}
	if !s.Full() {
		t.Fatal("queue should be full at 8 entries")
	}
	if mustEnqueue(t, s, mem.Request{ID: 99, Addr: 0, Domain: 1}, 0) {
		t.Fatal("enqueue accepted over capacity")
	}
	if s.Stats().Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", s.Stats().Rejected)
	}
}

func TestShaperResponseDrivesDAGAndSwallowsFakes(t *testing.T) {
	s, _ := chainShaper(t, 50)
	out := s.Tick(0) // fake on bank 0
	if s.Outstanding() != 1 {
		t.Fatalf("outstanding = %d", s.Outstanding())
	}
	deliver, err := s.OnResponse(mem.Response{ID: out[0].ID, Fake: true}, 30)
	if err != nil {
		t.Fatalf("response: %v", err)
	}
	if deliver {
		t.Fatal("fake response delivered to core")
	}
	if s.Outstanding() != 0 {
		t.Fatal("token not cleared")
	}
	// Next slot due at 30+50 = 80.
	if got := s.Tick(79); len(got) != 0 {
		t.Fatal("slot fired before weight elapsed")
	}
	if got := s.Tick(80); len(got) != 1 {
		t.Fatal("slot missing at 80")
	}
}

func TestShaperWrongDomainIsRoutingError(t *testing.T) {
	s, _ := chainShaper(t, 50)
	ok, err := s.Enqueue(mem.Request{ID: 1, Domain: 5}, 0)
	if ok {
		t.Fatal("wrong-domain request accepted")
	}
	var rerr *RoutingError
	if !errors.As(err, &rerr) {
		t.Fatalf("error = %v, want *RoutingError", err)
	}
	if rerr.Got != 5 || rerr.Want != 1 || rerr.ID != 1 {
		t.Fatalf("routing error fields = %+v", rerr)
	}
	if s.Stats().Enqueued != 0 {
		t.Fatal("misrouted request must not be accounted")
	}
}

func TestShaperUnknownResponseIsTypedError(t *testing.T) {
	s, _ := chainShaper(t, 50)
	deliver, err := s.OnResponse(mem.Response{ID: 12345}, 0)
	if deliver {
		t.Fatal("unknown response delivered")
	}
	var uerr *UnknownResponseError
	if !errors.As(err, &uerr) {
		t.Fatalf("error = %v, want *UnknownResponseError", err)
	}
	if uerr.ID != 12345 || uerr.Domain != 1 {
		t.Fatalf("unknown-response error fields = %+v", uerr)
	}
}

// emission is one externally observable emission event.
type emission struct {
	At   uint64
	Bank int
	Kind mem.Kind
}

// runShaped drives a shaper for cycles with the given victim request
// pattern (enqueue times and banks), returning the externally observable
// emission schedule. Completions are fed back after a fixed latency,
// mimicking an uncontended controller.
func runShaped(victimGaps []uint8, seed int64, cycles uint64) []emission {
	m := testMapper()
	d := rdag.MustPatternDriver(rdag.Template{Sequences: 2, Weight: 60, Banks: 8, WriteRatio: 0.25})
	s := New(1, d, m, 8, allocator(), seed)

	const latency = 40
	type inFlight struct {
		at   uint64
		resp mem.Response
	}
	var flights []inFlight
	var observed []emission

	nextVictim := uint64(0)
	vi := 0
	id := uint64(0)
	for now := uint64(0); now < cycles; now++ {
		// Victim produces a request at its own (secret-dependent) pace.
		if len(victimGaps) > 0 && now >= nextVictim && !s.Full() {
			gap := uint64(victimGaps[vi%len(victimGaps)]%100) + 1
			bank := int(victimGaps[vi%len(victimGaps)]) % 8
			id++
			s.Enqueue(mem.Request{ID: id, Addr: m.AddrForBank(bank, uint64(vi), 0), Kind: mem.Read, Domain: 1, Issue: now}, now)
			nextVictim = now + gap
			vi++
		}
		for _, r := range s.Tick(now) {
			observed = append(observed, emission{At: now, Bank: m.FlatBank(m.Decode(r.Addr)), Kind: r.Kind})
			flights = append(flights, inFlight{at: now + latency, resp: mem.Response{
				ID: r.ID, Addr: r.Addr, Kind: r.Kind, Domain: r.Domain, Fake: r.Fake, Completion: now + latency,
			}})
		}
		keep := flights[:0]
		for _, f := range flights {
			if f.at <= now {
				s.OnResponse(f.resp, now)
			} else {
				keep = append(keep, f)
			}
		}
		flights = keep
	}
	return observed
}

func TestShaperEmissionIndependentOfVictimPattern(t *testing.T) {
	// The core security property (§4.2): the (time, bank, kind) schedule
	// leaving the shaper must be identical for any two victim request
	// patterns, because only that schedule is observable via contention.
	base := runShaped(nil, 1, 5000)
	if len(base) == 0 {
		t.Fatal("no emissions observed")
	}
	f := func(gaps []uint8) bool {
		got := runShaped(gaps, 1, 5000)
		if len(got) != len(base) {
			return false
		}
		for i := range got {
			if got[i] != base[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatalf("emission schedule depends on victim pattern: %v", err)
	}
}

func TestShaperDelayAccounting(t *testing.T) {
	s, m := chainShaper(t, 100)
	req := mem.Request{ID: 1, Addr: m.AddrForBank(0, 0, 0), Kind: mem.Read, Domain: 1, Issue: 0}
	mustEnqueue(t, s, req, 0)
	// Slot fires at cycle 0 immediately; delay 0.
	s.Tick(0)
	if s.Stats().DelaySum != 0 {
		t.Fatalf("delay = %d, want 0", s.Stats().DelaySum)
	}
}

func TestShaperReset(t *testing.T) {
	s, m := chainShaper(t, 100)
	mustEnqueue(t, s, mem.Request{ID: 1, Addr: m.AddrForBank(0, 0, 0), Domain: 1}, 0)
	s.Tick(0)
	s.Reset()
	if s.QueueLen() != 0 || s.Outstanding() != 0 || s.Stats().Enqueued != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestShaperFakeAddressesDeterministic(t *testing.T) {
	a, _ := chainShaper(t, 10)
	b, _ := chainShaper(t, 10)
	ra := a.Tick(0)
	rb := b.Tick(0)
	if ra[0].Addr != rb[0].Addr {
		t.Fatal("same seed should give same fake address stream")
	}
}
