package attack

import (
	"testing"

	"dagguise/internal/audit"
	"dagguise/internal/camouflage"
	"dagguise/internal/config"
	"dagguise/internal/obs"
	"dagguise/internal/rdag"
)

func auditConfig() audit.Config {
	cfg := audit.DefaultConfig()
	cfg.Window = 50
	cfg.Permutations = 100
	cfg.Bootstrap = 100
	return cfg
}

// TestTapNonInterference pins the probe hook's measurement-only contract:
// the attacker's latency sequence is bit-identical with and without a tap,
// and the tap's samples mirror the returned latencies.
func TestTapNonInterference(t *testing.T) {
	s0, _ := figure5Secrets()
	run := func(tap *audit.Tap) []uint64 {
		h, err := NewHarness(config.Insecure, rdag.Template{}, camouflage.Distribution{}, 1)
		if err != nil {
			t.Fatal(err)
		}
		h.SetAuditTap(tap)
		lats, err := h.Run(s0, defaultProbe(), 150, 0)
		if err != nil {
			t.Fatal(err)
		}
		return lats
	}
	plain := run(nil)
	tap := audit.NewTap()
	tapped := run(tap)
	if len(plain) != len(tapped) {
		t.Fatalf("latency counts differ: %d vs %d", len(plain), len(tapped))
	}
	for i := range plain {
		if plain[i] != tapped[i] {
			t.Fatalf("latency %d differs with tap: %d vs %d", i, plain[i], tapped[i])
		}
	}
	samples := tap.Samples()
	if len(samples) != len(tapped) {
		t.Fatalf("tap recorded %d samples for %d probes", len(samples), len(tapped))
	}
	for i, s := range samples {
		if s.Value != tapped[i] {
			t.Fatalf("tap sample %d value %d != latency %d", i, s.Value, tapped[i])
		}
	}
}

func TestAuditLeakageInsecureExceedsBudget(t *testing.T) {
	s0, s1 := figure5Secrets()
	rep, err := AuditLeakage(config.Insecure, rdag.Template{}, camouflage.Distribution{},
		s0, s1, defaultProbe(), 150, auditConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.WithinBudget {
		t.Fatal("insecure baseline passed the leakage budget")
	}
	if rep.FirstExceeded != 0 {
		t.Fatalf("first exceeded window = %d, want 0 (the channel leaks immediately)", rep.FirstExceeded)
	}
	if rep.FirstExceededCycle == 0 {
		t.Fatal("no cycle index reported for the leaking window")
	}
	if rep.Scheme != "insecure" {
		t.Fatalf("scheme = %q", rep.Scheme)
	}
}

func TestAuditLeakageDAGguiseWithinBudget(t *testing.T) {
	s0, s1 := figure5Secrets()
	rep, err := AuditLeakage(config.DAGguise, rdag.Template{}, camouflage.Distribution{},
		s0, s1, defaultProbe(), 150, auditConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.WithinBudget {
		t.Fatalf("DAGguise flagged: first window %d at cycle %d, max MI %f",
			rep.FirstExceeded, rep.FirstExceededCycle, rep.MaxMI)
	}
	for _, w := range rep.Windows {
		if w.MI != 0 || w.T != 0 || w.KS != 0 {
			t.Fatalf("DAGguise window %d shows nonzero statistics: %+v", w.Index, w)
		}
	}
}

func TestAuditLeakageAttachObserves(t *testing.T) {
	s0, s1 := figure5Secrets()
	mx := obs.NewRegistry(3)
	cfg := auditConfig()
	_, err := AuditLeakage(config.DAGguise, rdag.Template{}, camouflage.Distribution{},
		s0, s1, defaultProbe(), 60, cfg, func(h *Harness) { h.Observe(mx, nil) })
	if err != nil {
		t.Fatal(err)
	}
	if mx.CounterTotal(obs.CtrIssuedReads) == 0 {
		t.Fatal("attach hook did not wire the registry (no issued reads counted)")
	}
	if mx.CounterTotal(obs.CtrShaperFakes) == 0 {
		t.Fatal("shaper not observed through the harness attach hook")
	}
}
