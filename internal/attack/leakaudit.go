package attack

import (
	"context"

	"dagguise/internal/audit"
	"dagguise/internal/camouflage"
	"dagguise/internal/config"
	"dagguise/internal/rdag"
)

// AuditLeakage runs the two secret patterns under the scheme with audit
// taps on the attacker's probe stream and drives the streaming auditor over
// the paired samples in probe order: window by window, the auditor computes
// calibrated secret-conditioned statistics and flags the first window whose
// leakage exceeds cfg.Budget, together with its cycle range. Both runs use
// cfg.Seed for their shaper, matching the attacker's strongest position
// (identical defense randomness, only the secret differs).
//
// attach, when non-nil, is called on each harness before it runs (the
// observability hook of cmd/dagaudit's -metrics / -trace-out flags).
func AuditLeakage(scheme config.Scheme, defense rdag.Template, dist camouflage.Distribution,
	secret0, secret1 Pattern, probe Probe, probes int, cfg audit.Config,
	attach func(*Harness)) (*audit.Report, error) {
	return AuditLeakageCtx(context.Background(), scheme, defense, dist,
		secret0, secret1, probe, probes, cfg, attach)
}

// AuditLeakageCtx is AuditLeakage with cooperative cancellation threaded
// through the auditor's per-window calibration loops: a canceled context
// stops the permutation and bootstrap resampling between iterations and
// surfaces as an error wrapping audit.ErrCanceled.
func AuditLeakageCtx(ctx context.Context, scheme config.Scheme, defense rdag.Template,
	dist camouflage.Distribution, secret0, secret1 Pattern, probe Probe, probes int,
	cfg audit.Config, attach func(*Harness)) (*audit.Report, error) {

	auditor, err := audit.New(cfg)
	if err != nil {
		return nil, err
	}
	run := func(p Pattern) (*audit.Tap, error) {
		h, err := NewHarness(scheme, defense, dist, cfg.Seed)
		if err != nil {
			return nil, err
		}
		tap := audit.NewTap()
		h.SetAuditTap(tap)
		if attach != nil {
			attach(h)
		}
		if _, err := h.Run(p, probe, probes, 0); err != nil {
			return nil, err
		}
		return tap, nil
	}
	tap0, err := run(secret0)
	if err != nil {
		return nil, err
	}
	tap1, err := run(secret1)
	if err != nil {
		return nil, err
	}
	// Replay the two tap streams through the auditor pairwise, the order
	// an online deployment would see them; every window is audited the
	// moment both streams cover it.
	s0, s1 := tap0.Samples(), tap1.Samples()
	for i := 0; i < len(s0) && i < len(s1); i++ {
		if err := auditor.PushCtx(ctx, 0, s0[i]); err != nil {
			return nil, err
		}
		if err := auditor.PushCtx(ctx, 1, s1[i]); err != nil {
			return nil, err
		}
	}
	return auditor.Report(scheme.String()), nil
}
