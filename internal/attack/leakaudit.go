package attack

import (
	"context"

	"dagguise/internal/audit"
	"dagguise/internal/camouflage"
	"dagguise/internal/config"
	"dagguise/internal/rdag"
)

// AuditLeakage runs the two secret patterns under the scheme with audit
// taps on the attacker's probe stream and drives the streaming auditor over
// the paired samples in probe order: window by window, the auditor computes
// calibrated secret-conditioned statistics and flags the first window whose
// leakage exceeds cfg.Budget, together with its cycle range. Both runs use
// cfg.Seed for their shaper, matching the attacker's strongest position
// (identical defense randomness, only the secret differs).
//
// attach, when non-nil, is called on each harness before it runs (the
// observability hook of cmd/dagaudit's -metrics / -trace-out flags).
func AuditLeakage(scheme config.Scheme, defense rdag.Template, dist camouflage.Distribution,
	secret0, secret1 Pattern, probe Probe, probes int, cfg audit.Config,
	attach func(*Harness)) (*audit.Report, error) {
	return AuditLeakageCtx(context.Background(), scheme, defense, dist,
		secret0, secret1, probe, probes, cfg, attach)
}

// AuditLeakageCtx is AuditLeakage with cooperative cancellation threaded
// through the auditor's per-window calibration loops: a canceled context
// stops the permutation and bootstrap resampling between iterations and
// surfaces as an error wrapping audit.ErrCanceled.
func AuditLeakageCtx(ctx context.Context, scheme config.Scheme, defense rdag.Template,
	dist camouflage.Distribution, secret0, secret1 Pattern, probe Probe, probes int,
	cfg audit.Config, attach func(*Harness)) (*audit.Report, error) {

	auditor, err := audit.New(cfg)
	if err != nil {
		return nil, err
	}
	s0, s1, err := CollectTaps(scheme, defense, dist, secret0, secret1, probe, probes, cfg.Seed, attach)
	if err != nil {
		return nil, err
	}
	// Replay the two tap streams through the auditor pairwise, the order
	// an online deployment would see them; every window is audited the
	// moment both streams cover it.
	for i := 0; i < len(s0) && i < len(s1); i++ {
		if err := auditor.PushCtx(ctx, 0, s0[i]); err != nil {
			return nil, err
		}
		if err := auditor.PushCtx(ctx, 1, s1[i]); err != nil {
			return nil, err
		}
	}
	return auditor.Report(scheme.String()), nil
}

// CollectTaps runs the two secret patterns under the scheme with audit
// taps attached and returns the raw attacker-observable sample streams —
// what an audit service ingests over the wire. Both runs use the given
// shaper seed, matching the attacker's strongest position (identical
// defense randomness, only the secret differs); the streams are therefore
// a pure function of the arguments and replay byte-identically.
func CollectTaps(scheme config.Scheme, defense rdag.Template, dist camouflage.Distribution,
	secret0, secret1 Pattern, probe Probe, probes int, seed int64,
	attach func(*Harness)) (s0, s1 []audit.Sample, err error) {

	run := func(p Pattern) ([]audit.Sample, error) {
		h, err := NewHarness(scheme, defense, dist, seed)
		if err != nil {
			return nil, err
		}
		tap := audit.NewTap()
		h.SetAuditTap(tap)
		if attach != nil {
			attach(h)
		}
		if _, err := h.Run(p, probe, probes, 0); err != nil {
			return nil, err
		}
		return tap.Samples(), nil
	}
	if s0, err = run(secret0); err != nil {
		return nil, nil, err
	}
	if s1, err = run(secret1); err != nil {
		return nil, nil, err
	}
	return s0, s1, nil
}
