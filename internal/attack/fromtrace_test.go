package attack

import (
	"testing"

	"dagguise/internal/camouflage"
	"dagguise/internal/config"
	"dagguise/internal/rdag"
	"dagguise/internal/trace"
	"dagguise/internal/victim"
)

func TestPatternFromTrace(t *testing.T) {
	tr, err := victim.DocDistTrace(11, victim.DefaultDocDist())
	if err != nil {
		t.Fatal(err)
	}
	p, err := PatternFromTrace(tr, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Gaps) != 200 || len(p.Banks) != 200 || len(p.Rows) != 200 {
		t.Fatalf("pattern sizes %d/%d/%d", len(p.Gaps), len(p.Banks), len(p.Rows))
	}
	for i := range p.Gaps {
		if p.Gaps[i] == 0 {
			t.Fatal("zero gap")
		}
		if p.Banks[i] < 0 || p.Banks[i] >= 8 {
			t.Fatalf("bank %d out of range", p.Banks[i])
		}
	}
}

func TestPatternFromTraceRejectsEmptyTrace(t *testing.T) {
	if _, err := PatternFromTrace(&trace.Slice{}, 10); err == nil {
		t.Fatal("empty trace accepted")
	}
}

// TestEndToEndRealVictimLeakage is the headline end-to-end result: two
// REAL DocDist computations over different private documents, distilled to
// their memory-controller request streams, are distinguishable by the
// attacker on the insecure baseline and indistinguishable under DAGguise.
func TestEndToEndRealVictimLeakage(t *testing.T) {
	trA, err := victim.DocDistTrace(11, victim.DefaultDocDist())
	if err != nil {
		t.Fatal(err)
	}
	trB, err := victim.DocDistTrace(999, victim.DefaultDocDist())
	if err != nil {
		t.Fatal(err)
	}
	pA, err := PatternFromTrace(trA, 150)
	if err != nil {
		t.Fatal(err)
	}
	pB, err := PatternFromTrace(trB, 150)
	if err != nil {
		t.Fatal(err)
	}

	probe := Probe{Bank: 0, Row: 0, Gap: 120}
	insecure, err := MeasureLeakage(config.Insecure, rdag.Template{}, camouflage.Distribution{},
		pA, pB, probe, 150, 2)
	if err != nil {
		t.Fatal(err)
	}
	if insecure.SequenceMI < 0.02 {
		t.Fatalf("real DocDist documents not distinguishable on the insecure baseline: MI=%f", insecure.SequenceMI)
	}
	shaped, err := MeasureLeakage(config.DAGguise, rdag.Template{Sequences: 8, Weight: 150, Banks: 8},
		camouflage.Distribution{}, pA, pB, probe, 150, 2)
	if err != nil {
		t.Fatal(err)
	}
	if shaped.AggregateMI != 0 || shaped.SequenceMI != 0 {
		t.Fatalf("DAGguise leaked real DocDist documents: %f/%f", shaped.AggregateMI, shaped.SequenceMI)
	}
}
