package attack

import (
	"testing"

	"dagguise/internal/camouflage"
	"dagguise/internal/config"
	"dagguise/internal/rdag"
)

// The two secret patterns of the Figure 5 running example: secret 0 emits
// with 100-cycle gaps, secret 1 with 200-cycle gaps.
func figure5Secrets() (Pattern, Pattern) {
	s0 := Pattern{Gaps: []uint64{100}, Banks: []int{0, 1, 2, 3}}
	s1 := Pattern{Gaps: []uint64{200}, Banks: []int{0, 1, 2, 3}}
	return s0, s1
}

func defaultProbe() Probe { return Probe{Bank: 0, Row: 0, Gap: 120} }

func leakage(t *testing.T, scheme config.Scheme, trials int) LeakageResult {
	t.Helper()
	s0, s1 := figure5Secrets()
	res, err := MeasureLeakage(scheme, rdag.Template{}, camouflage.Distribution{}, s0, s1, defaultProbe(), 150, trials)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestInsecureLeaks(t *testing.T) {
	res := leakage(t, config.Insecure, 3)
	if res.SequenceMI < 0.05 {
		t.Fatalf("insecure sequence MI = %f, expected clear leakage", res.SequenceMI)
	}
	if res.Accuracy < 0.9 {
		t.Fatalf("insecure classifier accuracy = %f, expected near 1", res.Accuracy)
	}
}

func TestDAGguiseBlocksLeakage(t *testing.T) {
	res := leakage(t, config.DAGguise, 2)
	if res.AggregateMI != 0 || res.SequenceMI != 0 {
		t.Fatalf("DAGguise leaked: aggregate=%f sequence=%f", res.AggregateMI, res.SequenceMI)
	}
}

func TestFSBTABlocksLeakage(t *testing.T) {
	res := leakage(t, config.FSBTA, 1)
	if res.AggregateMI != 0 || res.SequenceMI != 0 {
		t.Fatalf("FS-BTA leaked: aggregate=%f sequence=%f", res.AggregateMI, res.SequenceMI)
	}
}

func TestCamouflageLeaksOrdering(t *testing.T) {
	// Figure 2: Camouflage hides the aggregate distribution but not the
	// fine-grained schedule.
	s0, s1 := figure5Secrets()
	res, err := MeasureLeakage(config.Camouflage, rdag.Template{},
		camouflage.Distribution{Intervals: []uint64{200, 400}}, s0, s1, defaultProbe(), 150, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.SequenceMI < 0.01 {
		t.Fatalf("camouflage sequence MI = %f, expected an ordering/bank leak", res.SequenceMI)
	}
}

func TestDAGguiseExactIndistinguishability(t *testing.T) {
	// Stronger than MI: the attacker's latency sequences must be
	// *identical* for both secrets, trial by trial.
	s0, s1 := figure5Secrets()
	for seed := int64(0); seed < 3; seed++ {
		h0, err := NewHarness(config.DAGguise, rdag.Template{}, camouflage.Distribution{}, seed)
		if err != nil {
			t.Fatal(err)
		}
		l0, err := h0.Run(s0, defaultProbe(), 200, 0)
		if err != nil {
			t.Fatal(err)
		}
		h1, _ := NewHarness(config.DAGguise, rdag.Template{}, camouflage.Distribution{}, seed)
		l1, err := h1.Run(s1, defaultProbe(), 200, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := range l0 {
			if l0[i] != l1[i] {
				t.Fatalf("seed %d probe %d: %d vs %d", seed, i, l0[i], l1[i])
			}
		}
	}
}

func TestRowAwareDAGguiseTimingSecretsBlocked(t *testing.T) {
	// The §4.4 row-buffer-aware extension runs with an OPEN-row policy;
	// the defense rDAG prescribes the hit/miss pattern instead. Secrets
	// encoded in request *timing and banks* (the channel the paper
	// targets) stay hidden: both patterns here touch the same rows.
	s0 := Pattern{Gaps: []uint64{100}, Banks: []int{0, 1}, Rows: []uint64{7}}
	s1 := Pattern{Gaps: []uint64{200}, Banks: []int{0, 1}, Rows: []uint64{7}}
	defense := rdag.Template{Sequences: 4, Weight: 150, Banks: 16, RowHitRatio: 0.5}
	res, err := MeasureLeakage(config.DAGguise, defense, camouflage.Distribution{},
		s0, s1, defaultProbe(), 150, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.AggregateMI != 0 || res.SequenceMI != 0 {
		t.Fatalf("row-aware DAGguise leaked a timing secret: aggregate=%f sequence=%f", res.AggregateMI, res.SequenceMI)
	}
}

func TestRowAwareRowValueChannelDocumented(t *testing.T) {
	// A finding of this reproduction (see EXPERIMENTS.md): the §4.4
	// row-aware sketch does NOT protect secrets encoded in absolute row
	// addresses. A forwarded real request leaves the victim's actual row
	// open, so an attacker probing candidate row values under the open-
	// row policy can distinguish which row the victim touched. The base
	// scheme's closed-row policy closes exactly this channel.
	s0 := Pattern{Gaps: []uint64{100}, Banks: []int{0}, Rows: []uint64{0}}  // the attacker's own row
	s1 := Pattern{Gaps: []uint64{100}, Banks: []int{0}, Rows: []uint64{42}} // a different row
	defense := rdag.Template{Sequences: 4, Weight: 150, Banks: 16, RowHitRatio: 0.5}
	rowAware, err := MeasureLeakage(config.DAGguise, defense, camouflage.Distribution{},
		s0, s1, defaultProbe(), 150, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rowAware.SequenceMI == 0 {
		t.Fatal("expected the row-value channel to be measurable under the row-aware extension; " +
			"if this now measures zero, the finding in EXPERIMENTS.md needs updating")
	}
	// The base (closed-row) scheme blocks the same secret pair.
	base := defense
	base.RowHitRatio = 0
	closed, err := MeasureLeakage(config.DAGguise, base, camouflage.Distribution{},
		s0, s1, defaultProbe(), 150, 2)
	if err != nil {
		t.Fatal(err)
	}
	if closed.AggregateMI != 0 || closed.SequenceMI != 0 {
		t.Fatalf("closed-row DAGguise leaked row values: %f/%f", closed.AggregateMI, closed.SequenceMI)
	}
}

func TestFigure1PrimerOrdering(t *testing.T) {
	rows, err := Figure1Primer(200)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]float64{}
	for _, r := range rows {
		byName[r.Scenario] = r.MeanLatency
	}
	idle := byName["no victim activity"]
	diffBank := byName["different bank"]
	sameRow := byName["same bank, same row"]
	diffRow := byName["same bank, different row"]
	if !(idle < diffBank && diffBank < sameRow && sameRow < diffRow) {
		t.Fatalf("Figure 1 ordering violated: idle=%.1f diffBank=%.1f sameRow=%.1f diffRow=%.1f",
			idle, diffBank, sameRow, diffRow)
	}
}

func TestPatternValidate(t *testing.T) {
	if err := (Pattern{}).Validate(); err == nil {
		t.Fatal("empty pattern accepted")
	}
}

func TestHarnessRejectsUnknownScheme(t *testing.T) {
	if _, err := NewHarness(config.Scheme(99), rdag.Template{}, camouflage.Distribution{}, 1); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

func TestRunBudgetExceeded(t *testing.T) {
	h, err := NewHarness(config.Insecure, rdag.Template{}, camouflage.Distribution{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, err = h.Run(Pattern{Gaps: []uint64{100}, Banks: []int{0}}, defaultProbe(), 1_000_000, 10_000)
	if err == nil {
		t.Fatal("expected cycle-budget error")
	}
}
