// Package attack implements the memory timing side-channel receiver of
// §2.2 and the leakage experiments of the evaluation: the Figure 1 attack
// primer (distinguishing a victim's bank/row behaviour from the latency of
// the attacker's own probes), the Figure 2 Camouflage ordering leak, and
// the Table 1 security comparison, quantified as mutual information
// between a binary victim secret and the attacker's observed latencies.
package attack

import (
	"fmt"
	"math/rand"

	"dagguise/internal/audit"
	"dagguise/internal/camouflage"
	"dagguise/internal/config"
	"dagguise/internal/dram"
	"dagguise/internal/mem"
	"dagguise/internal/memctrl"
	"dagguise/internal/obs"
	"dagguise/internal/rdag"
	"dagguise/internal/sched"
	"dagguise/internal/shaper"
	"dagguise/internal/stats"
)

// Pattern is a victim (transmitter) request schedule: request i goes to
// Banks[i mod len] Gaps[i mod len] cycles after the previous request
// completes (closed loop, matching the rDAG-style examples of Figure 5).
// The pattern is the secret-dependent behaviour the attacker tries to
// distinguish.
type Pattern struct {
	Gaps  []uint64
	Banks []int
	// Rows optionally pins each request's row (for row-buffer attacks);
	// empty means row 0.
	Rows []uint64
}

// Validate checks the pattern.
func (p Pattern) Validate() error {
	if len(p.Gaps) == 0 || len(p.Banks) == 0 {
		return fmt.Errorf("attack: pattern needs gaps and banks")
	}
	return nil
}

func (p Pattern) row(i int) uint64 {
	if len(p.Rows) == 0 {
		return 0
	}
	return p.Rows[i%len(p.Rows)]
}

// Probe configures the attacker (receiver): it keeps one outstanding read
// to (Bank, Row), reissuing Gap cycles after each response, and records
// each response latency — the exact observable of the channel.
type Probe struct {
	Bank int
	Row  uint64
	Gap  uint64
}

// Harness wires a victim and an attacker to a shared memory controller
// under one protection scheme, without the full core model: both parties
// emit raw requests, which isolates the channel itself.
type Harness struct {
	scheme  config.Scheme
	mapper  *mem.Mapper
	dev     *dram.Device
	ctrl    *memctrl.Controller
	dag     *shaper.Shaper
	camo    *camouflage.Shaper
	egress  []mem.Request
	nextID  uint64
	defense rdag.Template
	dist    camouflage.Distribution
	seed    int64
	tap     *audit.Tap
}

const (
	victimDomain   mem.Domain = 1
	attackerDomain mem.Domain = 2
)

// NewHarness builds the shared-controller rig for the scheme. defense is
// used for DAGguise, dist for Camouflage; zero values select defaults.
func NewHarness(scheme config.Scheme, defense rdag.Template, dist camouflage.Distribution, seed int64) (*Harness, error) {
	cfg := config.Default(2, scheme)
	if scheme == config.DAGguise && defense.RowHitRatio > 0 {
		// Row-buffer-aware defense rDAGs prescribe the row behaviour
		// themselves; the closed-row policy is not needed (§4.4).
		cfg.ClosedRow = false
	}
	mapper := mem.MustMapper(cfg.Geometry)
	dev := dram.New(cfg.Timing, mapper, cfg.ClosedRow)
	h := &Harness{scheme: scheme, mapper: mapper, dev: dev, defense: defense, dist: dist, seed: seed}

	var policy memctrl.Scheduler
	partition := false
	groups := []sched.Group{{victimDomain}, {attackerDomain}}
	switch scheme {
	case config.Insecure, config.Camouflage, config.DAGguise:
		policy = memctrl.FRFCFS{}
	case config.FixedService:
		policy = sched.NewFixedService(cfg.Timing, groups)
		partition = true
	case config.FSBTA:
		policy = sched.NewFSBTA(cfg.Timing, groups)
		partition = true
	case config.TemporalPartitioning:
		policy = sched.NewTemporalPartitioning(cfg.Timing, groups, 96)
		partition = true
	default:
		return nil, fmt.Errorf("attack: unsupported scheme %v", scheme)
	}
	h.ctrl = memctrl.New(dev, mapper, policy, 64)
	if partition {
		h.ctrl.PartitionQueue(8)
	}

	switch scheme {
	case config.DAGguise:
		tpl := defense
		if tpl.Sequences == 0 {
			tpl = rdag.Template{Sequences: 4, Weight: 300, Banks: mapper.BankCount()}
		}
		driver, err := rdag.NewPatternDriver(tpl)
		if err != nil {
			return nil, err
		}
		h.dag = shaper.New(victimDomain, driver, mapper, 8, h.alloc, seed)
	case config.Camouflage:
		d := dist
		if len(d.Intervals) == 0 {
			d = camouflage.Distribution{Intervals: []uint64{200, 400}}
		}
		sh, err := camouflage.New(victimDomain, d, mapper, 8, h.alloc, seed)
		if err != nil {
			return nil, err
		}
		h.camo = sh
	}
	return h, nil
}

func (h *Harness) alloc() uint64 {
	h.nextID++
	return h.nextID
}

// SetAuditTap attaches a leakage-audit tap recording every attacker probe
// as (completion cycle, latency). The tap is measurement-only — nothing in
// the harness reads it back — and a nil tap keeps the hook a no-op, so the
// probe sequence is bit-identical with auditing on and off.
func (h *Harness) SetAuditTap(t *audit.Tap) { h.tap = t }

// Observe attaches an observability registry and tracer (either may be
// nil) to the harness's controller, DRAM device and shaper, mirroring
// sim.System.Observe for the attack rig.
func (h *Harness) Observe(mx *obs.Registry, tr *obs.Tracer) {
	h.ctrl.Observe(mx, tr)
	if h.dag != nil {
		h.dag.Observe(mx, tr)
	}
	if h.camo != nil {
		h.camo.Observe(mx, tr)
	}
}

// victimEnqueue routes a victim request through the scheme's shaper (if
// any) or directly to the controller. The error reports a routing
// violation (a request tagged with the wrong domain).
func (h *Harness) victimEnqueue(req mem.Request, now uint64) (bool, error) {
	switch {
	case h.dag != nil:
		if h.dag.Full() {
			return false, nil
		}
		return h.dag.Enqueue(req, now)
	case h.camo != nil:
		if h.camo.Full() {
			return false, nil
		}
		return h.camo.Enqueue(req, now)
	default:
		return h.ctrl.Enqueue(req, now), nil
	}
}

// Run simulates until the attacker collects nProbes latencies (or the
// cycle budget runs out) and returns them in probe order.
func (h *Harness) Run(victim Pattern, probe Probe, nProbes int, maxCycles uint64) ([]uint64, error) {
	if err := victim.Validate(); err != nil {
		return nil, err
	}
	if maxCycles == 0 {
		maxCycles = 30_000_000
	}
	var latencies []uint64

	// Victim state: closed loop over its pattern.
	vIdx := 0
	vOutstanding := false
	vNextAt := uint64(0)
	var vPendingID uint64

	// Attacker state.
	aOutstanding := false
	aNextAt := uint64(0)
	var aID uint64
	var aIssued uint64
	probeCol := 0

	for now := uint64(0); now < maxCycles && len(latencies) < nProbes; now++ {
		// Victim emission.
		if !vOutstanding && now >= vNextAt {
			bank := victim.Banks[vIdx%len(victim.Banks)]
			req := mem.Request{
				ID:     h.alloc(),
				Addr:   h.mapper.AddrForBank(bank, victim.row(vIdx), vIdx%32),
				Kind:   mem.Read,
				Domain: victimDomain,
				Issue:  now,
			}
			ok, err := h.victimEnqueue(req, now)
			if err != nil {
				return nil, err
			}
			if ok {
				vPendingID = req.ID
				vOutstanding = true
			}
		}
		// Attacker probe.
		if !aOutstanding && now >= aNextAt {
			probeCol = (probeCol + 1) % 2
			req := mem.Request{
				ID:     h.alloc(),
				Addr:   h.mapper.AddrForBank(probe.Bank, probe.Row, probeCol),
				Kind:   mem.Read,
				Domain: attackerDomain,
				Issue:  now,
			}
			if h.ctrl.Enqueue(req, now) {
				aID = req.ID
				aIssued = now
				aOutstanding = true
			}
		}
		// Shaper emission.
		if h.dag != nil {
			h.egress = append(h.egress, h.dag.Tick(now)...)
		}
		if h.camo != nil {
			h.egress = append(h.egress, h.camo.Tick(now)...)
		}
		for len(h.egress) > 0 && h.ctrl.Enqueue(h.egress[0], now) {
			h.egress = h.egress[1:]
		}
		// Controller.
		for _, resp := range h.ctrl.Tick(now) {
			switch resp.Domain {
			case attackerDomain:
				if resp.ID == aID {
					latencies = append(latencies, now-aIssued)
					h.tap.Record(now, now-aIssued)
					aOutstanding = false
					aNextAt = now + probe.Gap
				}
			case victimDomain:
				deliver := true
				if h.dag != nil {
					var err error
					deliver, err = h.dag.OnResponse(resp, now)
					if err != nil {
						return nil, err
					}
				} else if h.camo != nil {
					deliver = h.camo.OnResponse(resp, now)
				}
				if deliver && resp.ID == vPendingID {
					vOutstanding = false
					vIdx++
					vNextAt = now + victim.Gaps[(vIdx-1)%len(victim.Gaps)]
				}
			}
		}
	}
	if len(latencies) < nProbes {
		return latencies, fmt.Errorf("attack: collected %d of %d probes within %d cycles", len(latencies), nProbes, maxCycles)
	}
	return latencies, nil
}

// LeakageBinWidth is the latency-histogram bin width (cycles) every MI
// estimate of the leakage experiments uses, shared with the calibration in
// internal/eval so thresholds and estimates bin identically.
const LeakageBinWidth = 8

// LeakageResult quantifies how distinguishable two victim secrets are.
type LeakageResult struct {
	// AggregateMI is the mutual information between the secret and the
	// attacker's latency histogram (order-blind), Miller–Madow corrected.
	AggregateMI float64
	// SequenceMI is the per-probe-position mutual information, which
	// also captures ordering leaks (Figure 2).
	SequenceMI float64
	// Accuracy is a nearest-neighbour classifier's secret-guessing
	// accuracy over held-out trials (0.5 = chance, 1.0 = broken).
	Accuracy float64
	// Raw0 / Raw1 are the pooled per-secret latency samples behind
	// AggregateMI, kept so callers can calibrate thresholds (permutation
	// testing) and attach confidence intervals (bootstrap) to the point
	// estimates above.
	Raw0, Raw1 []uint64
	// Seq0 / Seq1 are the per-probe-position samples behind SequenceMI
	// (position i holds one latency per trial), kept for the same reason.
	Seq0, Seq1 [][]uint64
}

// MeasureOpts carries the optional knobs of MeasureLeakageOpts.
type MeasureOpts struct {
	// Attach, when non-nil, is called on every freshly built harness
	// before it runs — the hook the CLIs use to wire a shared
	// observability registry and tracer across an experiment's runs.
	Attach func(*Harness)
}

// MeasureLeakage runs the two secret patterns for several trials each
// (varying shaper seeds) and quantifies attacker-side distinguishability.
func MeasureLeakage(scheme config.Scheme, defense rdag.Template, dist camouflage.Distribution,
	secret0, secret1 Pattern, probe Probe, probes, trials int) (LeakageResult, error) {
	return MeasureLeakageOpts(scheme, defense, dist, secret0, secret1, probe, probes, trials, MeasureOpts{})
}

// MeasureLeakageOpts is MeasureLeakage with observability options.
func MeasureLeakageOpts(scheme config.Scheme, defense rdag.Template, dist camouflage.Distribution,
	secret0, secret1 Pattern, probe Probe, probes, trials int, opts MeasureOpts) (LeakageResult, error) {

	if trials < 1 {
		trials = 1
	}
	run := func(p Pattern, seed int64) ([]uint64, error) {
		h, err := NewHarness(scheme, defense, dist, seed)
		if err != nil {
			return nil, err
		}
		if opts.Attach != nil {
			opts.Attach(h)
		}
		return h.Run(p, probe, probes, 0)
	}

	all0 := make([][]uint64, trials)
	all1 := make([][]uint64, trials)
	for tr := 0; tr < trials; tr++ {
		var err error
		if all0[tr], err = run(secret0, int64(tr)*1543+7); err != nil {
			return LeakageResult{}, err
		}
		if all1[tr], err = run(secret1, int64(tr)*1543+7); err != nil {
			return LeakageResult{}, err
		}
	}

	// Aggregate: pool every latency by secret.
	var flat0, flat1 []uint64
	for tr := 0; tr < trials; tr++ {
		flat0 = append(flat0, all0[tr]...)
		flat1 = append(flat1, all1[tr]...)
	}
	// Per-position: samples across trials at each probe index.
	seq0 := make([][]uint64, probes)
	seq1 := make([][]uint64, probes)
	for i := 0; i < probes; i++ {
		for tr := 0; tr < trials; tr++ {
			seq0[i] = append(seq0[i], all0[tr][i])
			seq1[i] = append(seq1[i], all1[tr][i])
		}
	}
	const binWidth = LeakageBinWidth
	res := LeakageResult{
		AggregateMI: stats.BinaryMI(flat0, flat1, binWidth),
		SequenceMI:  stats.SequenceMI(seq0, seq1, binWidth),
		Raw0:        flat0,
		Raw1:        flat1,
		Seq0:        seq0,
		Seq1:        seq1,
	}
	res.Accuracy = classifierAccuracy(all0, all1)
	return res, nil
}

// classifierAccuracy does leave-one-out nearest-neighbour classification
// of trials by L1 distance between latency vectors.
func classifierAccuracy(all0, all1 [][]uint64) float64 {
	type sample struct {
		vec    []uint64
		secret int
	}
	var samples []sample
	for _, v := range all0 {
		samples = append(samples, sample{v, 0})
	}
	for _, v := range all1 {
		samples = append(samples, sample{v, 1})
	}
	if len(samples) < 2 {
		return 0.5
	}
	dist := func(a, b []uint64) uint64 {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		var d uint64
		for i := 0; i < n; i++ {
			if a[i] > b[i] {
				d += a[i] - b[i]
			} else {
				d += b[i] - a[i]
			}
		}
		return d
	}
	correct := 0
	ties := 0
	rng := rand.New(rand.NewSource(1))
	for i, s := range samples {
		bestD := ^uint64(0)
		bestSecret := -1
		tie := false
		for j, o := range samples {
			if i == j {
				continue
			}
			d := dist(s.vec, o.vec)
			switch {
			case d < bestD:
				bestD = d
				bestSecret = o.secret
				tie = false
			case d == bestD && o.secret != bestSecret:
				tie = true
			}
		}
		if tie {
			ties++
			if rng.Intn(2) == s.secret {
				correct++
			}
			continue
		}
		if bestSecret == s.secret {
			correct++
		}
	}
	return float64(correct) / float64(len(samples))
}
