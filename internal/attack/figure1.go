package attack

import (
	"dagguise/internal/camouflage"
	"dagguise/internal/config"
	"dagguise/internal/rdag"
	"dagguise/internal/stats"
)

// Figure1Row is one scenario of the attack primer: the mean latency the
// attacker observes for its own same-bank probes while the victim behaves
// as described.
type Figure1Row struct {
	Scenario    string
	MeanLatency float64
}

// Figure1Primer reproduces the Figure 1 example on the insecure (open-row,
// FR-FCFS) configuration: the attacker's probe latency reveals whether the
// victim is idle, hitting a different bank, the same bank and row, or the
// same bank but a different row.
func Figure1Primer(probes int) ([]Figure1Row, error) {
	return Figure1PrimerObserved(probes, nil)
}

// Figure1PrimerObserved is Figure1Primer with an observability hook:
// attach, when non-nil, is called on every harness before it runs.
func Figure1PrimerObserved(probes int, attach func(*Harness)) ([]Figure1Row, error) {
	probe := Probe{Bank: 0, Row: 0, Gap: 200}
	scenarios := []struct {
		name   string
		victim Pattern
		idle   bool
	}{
		{"no victim activity", Pattern{}, true},
		{"different bank", Pattern{Gaps: []uint64{120}, Banks: []int{4}}, false},
		{"same bank, same row", Pattern{Gaps: []uint64{120}, Banks: []int{0}, Rows: []uint64{0}}, false},
		{"same bank, different row", Pattern{Gaps: []uint64{120}, Banks: []int{0}, Rows: []uint64{77}}, false},
	}
	var rows []Figure1Row
	for _, sc := range scenarios {
		h, err := NewHarness(config.Insecure, rdag.Template{}, camouflage.Distribution{}, 1)
		if err != nil {
			return nil, err
		}
		if attach != nil {
			attach(h)
		}
		victim := sc.victim
		if sc.idle {
			// An "idle" victim: requests so far apart they never collide.
			victim = Pattern{Gaps: []uint64{1 << 62}, Banks: []int{7}}
		}
		lats, err := h.Run(victim, probe, probes, 0)
		if err != nil {
			return nil, err
		}
		vals := make([]float64, len(lats))
		for i, l := range lats {
			vals[i] = float64(l)
		}
		rows = append(rows, Figure1Row{Scenario: sc.name, MeanLatency: stats.Mean(vals)})
	}
	return rows, nil
}
