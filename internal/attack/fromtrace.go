package attack

import (
	"fmt"

	"dagguise/internal/cache"
	"dagguise/internal/config"
	"dagguise/internal/mem"
	"dagguise/internal/trace"
)

// PatternFromTrace distils a recorded victim trace into an attack Pattern:
// it replays the trace through a cache hierarchy and keeps the LLC-miss
// stream — the requests that actually reach the memory controller — as
// (gap, bank, row) triples. This lets the leakage experiments use *real*
// application behaviour (two DocDist documents, two DNA reads) as the
// transmitter instead of synthetic schedules.
//
// Gaps are estimated as the instruction distance between consecutive
// misses divided by the core's issue width — the zero-contention injection
// spacing, which is what a closed-loop Pattern needs.
func PatternFromTrace(tr *trace.Slice, maxRequests int) (Pattern, error) {
	if maxRequests <= 0 {
		maxRequests = 256
	}
	cfg := config.Default(1, config.Insecure)
	hier, err := cache.NewHierarchy(cfg)
	if err != nil {
		return Pattern{}, err
	}
	mapper := mem.MustMapper(cfg.Geometry)
	var p Pattern
	instSinceMiss := uint64(0)
	for _, op := range tr.Ops {
		instSinceMiss += uint64(op.Gap) + 1
		res := hier.Access(op.Addr, op.Kind == mem.Write)
		if !res.MissToMem || op.Kind == mem.Write {
			continue
		}
		c := mapper.Decode(op.Addr)
		gap := instSinceMiss / uint64(cfg.Core.IssueWidth)
		if gap == 0 {
			gap = 1
		}
		p.Gaps = append(p.Gaps, gap)
		p.Banks = append(p.Banks, mapper.FlatBank(c))
		p.Rows = append(p.Rows, c.Row)
		instSinceMiss = 0
		if len(p.Gaps) >= maxRequests {
			break
		}
	}
	if len(p.Gaps) == 0 {
		return Pattern{}, fmt.Errorf("attack: trace produced no LLC misses")
	}
	return p, nil
}
