package sat

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseDIMACS reads a CNF formula in DIMACS format into the solver.
// Comment lines (c ...) are skipped; the problem line (p cnf V C) sizes
// the variable space; clauses are zero-terminated literal lists, possibly
// spanning lines. It returns the number of clauses added and an error on
// malformed input. If the formula is trivially unsatisfiable the solver
// remembers it (Solve returns Unsat).
func (s *Solver) ParseDIMACS(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	sawProblem := false
	clauses := 0
	var current []int
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		if strings.HasPrefix(line, "p") {
			fields := strings.Fields(line)
			if len(fields) != 4 || fields[1] != "cnf" {
				return clauses, fmt.Errorf("sat: malformed problem line %q", line)
			}
			nvars, err := strconv.Atoi(fields[2])
			if err != nil || nvars < 0 {
				return clauses, fmt.Errorf("sat: bad variable count in %q", line)
			}
			s.EnsureVars(nvars)
			sawProblem = true
			continue
		}
		if !sawProblem {
			return clauses, fmt.Errorf("sat: clause before problem line: %q", line)
		}
		for _, tok := range strings.Fields(line) {
			lit, err := strconv.Atoi(tok)
			if err != nil {
				return clauses, fmt.Errorf("sat: bad literal %q", tok)
			}
			if lit == 0 {
				s.AddClause(current...)
				clauses++
				current = current[:0]
				continue
			}
			current = append(current, lit)
		}
	}
	if err := sc.Err(); err != nil {
		return clauses, err
	}
	if len(current) > 0 {
		s.AddClause(current...)
		clauses++
	}
	return clauses, nil
}

// WriteDIMACS renders a clause set in DIMACS format (a convenience for
// exporting verification obligations to external solvers for
// cross-checking).
func WriteDIMACS(w io.Writer, numVars int, clauses [][]int) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "p cnf %d %d\n", numVars, len(clauses)); err != nil {
		return err
	}
	for _, cl := range clauses {
		for _, l := range cl {
			if _, err := fmt.Fprintf(bw, "%d ", l); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(bw, "0"); err != nil {
			return err
		}
	}
	return bw.Flush()
}
