// Package sat implements a CDCL (conflict-driven clause learning) SAT
// solver with two-watched-literal propagation, first-UIP conflict
// analysis, VSIDS-style variable activity, phase saving, Luby restarts and
// learnt-clause reduction. It is the decision procedure behind the
// k-induction security verification in internal/verify, standing in for
// the SMT solver the paper drives through Rosette.
//
// The API follows DIMACS conventions: variables are positive integers,
// literals are non-zero integers where negation is arithmetic negation.
package sat

import "fmt"

// Result of a Solve call.
type Result int

const (
	// Unsat means the formula (with assumptions) is unsatisfiable.
	Unsat Result = iota
	// Sat means a model was found.
	Sat
)

const noReason = -1

type clause struct {
	lits    []uint32
	learnt  bool
	act     float64
	deleted bool
}

type watch struct {
	clauseIdx int
	blocker   uint32
}

// Solver is a single-use-or-incremental CDCL solver.
type Solver struct {
	nvars   int
	clauses []clause
	watches [][]watch // indexed by literal code

	assign   []int8 // 0 = unassigned, 1 = true, -1 = false (indexed by var)
	level    []int
	reason   []int
	activity []float64
	phase    []bool
	varInc   float64

	trail    []uint32
	trailLim []int
	qhead    int

	seen      []bool
	conflictC int

	heap    []int // binary max-heap of vars by activity
	heapPos []int // var -> heap index, -1 if absent

	unsat     bool
	claInc    float64
	nLearnt   int
	maxLearnt int
}

// New creates an empty solver.
func New() *Solver {
	s := &Solver{varInc: 1, claInc: 1, maxLearnt: 8000}
	// Literal codes start at 2 (variable 1 -> codes 2 and 3); reserve the
	// first two watch slots so codes index directly.
	s.watches = append(s.watches, nil, nil)
	return s
}

// lit encodes a DIMACS literal as an internal code.
func lit(l int) uint32 {
	if l > 0 {
		return uint32(l) << 1
	}
	return uint32(-l)<<1 | 1
}

func litVar(c uint32) int    { return int(c >> 1) }
func litNeg(c uint32) uint32 { return c ^ 1 }

// NewVar allocates a fresh variable and returns its index.
func (s *Solver) NewVar() int {
	s.nvars++
	s.assign = append(s.assign, 0)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, noReason)
	s.activity = append(s.activity, 0)
	s.phase = append(s.phase, false)
	s.seen = append(s.seen, false)
	s.heapPos = append(s.heapPos, -1)
	s.watches = append(s.watches, nil, nil)
	s.heapInsert(s.nvars - 1)
	return s.nvars
}

// EnsureVars allocates variables up to n.
func (s *Solver) EnsureVars(n int) {
	for s.nvars < n {
		s.NewVar()
	}
}

// value returns the current value of a literal code: 1 true, -1 false, 0
// unassigned.
func (s *Solver) value(c uint32) int8 {
	v := s.assign[litVar(c)-1]
	if c&1 == 1 {
		return -v
	}
	return v
}

// AddClause adds a clause of DIMACS literals. It returns false if the
// solver is already proven unsatisfiable at the root level.
func (s *Solver) AddClause(dimacs ...int) bool {
	if s.unsat {
		return false
	}
	if len(s.trailLim) != 0 {
		panic("sat: AddClause above decision level 0")
	}
	// Normalise: dedupe, drop false-at-root literals, detect tautology.
	seen := make(map[int]bool, len(dimacs))
	var lits []uint32
	for _, dl := range dimacs {
		if dl == 0 {
			panic("sat: zero literal")
		}
		if seen[-dl] {
			return true // tautology
		}
		if seen[dl] {
			continue
		}
		seen[dl] = true
		v := dl
		if v < 0 {
			v = -v
		}
		s.EnsureVars(v)
		c := lit(dl)
		switch s.value(c) {
		case 1:
			return true // already satisfied at root
		case -1:
			continue // drop false literal
		}
		lits = append(lits, c)
	}
	switch len(lits) {
	case 0:
		s.unsat = true
		return false
	case 1:
		s.enqueue(lits[0], noReason)
		if s.propagate() != -1 {
			s.unsat = true
			return false
		}
		return true
	}
	s.attachClause(clause{lits: lits})
	return true
}

func (s *Solver) attachClause(c clause) int {
	idx := len(s.clauses)
	s.clauses = append(s.clauses, c)
	s.watches[c.lits[0]] = append(s.watches[c.lits[0]], watch{idx, c.lits[1]})
	s.watches[c.lits[1]] = append(s.watches[c.lits[1]], watch{idx, c.lits[0]})
	if c.learnt {
		s.nLearnt++
	}
	return idx
}

func (s *Solver) enqueue(c uint32, reason int) {
	v := litVar(c) - 1
	val := int8(1)
	if c&1 == 1 {
		val = -1
	}
	s.assign[v] = val
	s.level[v] = len(s.trailLim)
	s.reason[v] = reason
	s.phase[v] = val == 1
	s.trail = append(s.trail, c)
}

// propagate performs unit propagation; it returns the index of a
// conflicting clause or -1.
func (s *Solver) propagate() int {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead] // p is true
		s.qhead++
		np := litNeg(p) // watch list of literals that became false
		ws := s.watches[np]
		kept := ws[:0]
		for wi := 0; wi < len(ws); wi++ {
			w := ws[wi]
			if s.value(w.blocker) == 1 {
				kept = append(kept, w)
				continue
			}
			cl := &s.clauses[w.clauseIdx]
			if cl.deleted {
				continue
			}
			// Ensure np is lits[1].
			if cl.lits[0] == np {
				cl.lits[0], cl.lits[1] = cl.lits[1], cl.lits[0]
			}
			first := cl.lits[0]
			if first != w.blocker && s.value(first) == 1 {
				kept = append(kept, watch{w.clauseIdx, first})
				continue
			}
			// Look for a new watch.
			found := false
			for k := 2; k < len(cl.lits); k++ {
				if s.value(cl.lits[k]) != -1 {
					cl.lits[1], cl.lits[k] = cl.lits[k], cl.lits[1]
					s.watches[cl.lits[1]] = append(s.watches[cl.lits[1]], watch{w.clauseIdx, first})
					found = true
					break
				}
			}
			if found {
				continue
			}
			// Clause is unit or conflicting.
			kept = append(kept, watch{w.clauseIdx, first})
			if s.value(first) == -1 {
				// Conflict: keep remaining watches and report.
				kept = append(kept, ws[wi+1:]...)
				s.watches[np] = kept
				s.qhead = len(s.trail)
				return w.clauseIdx
			}
			s.enqueue(first, w.clauseIdx)
		}
		s.watches[np] = kept
	}
	return -1
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	if s.heapPos[v] >= 0 {
		s.heapUp(s.heapPos[v])
	}
}

// analyze performs first-UIP conflict analysis, returning the learnt
// clause (with the asserting literal first) and the backjump level.
func (s *Solver) analyze(confl int) ([]uint32, int) {
	learnt := []uint32{0} // slot for the asserting literal
	counter := 0
	var p uint32
	first := true
	idx := len(s.trail) - 1

	for {
		cl := &s.clauses[confl]
		cl.act += s.claInc
		start := 0
		if !first {
			start = 1 // lits[0] is p itself on resolution steps
		}
		first = false
		for _, q := range cl.lits[start:] {
			v := litVar(q) - 1
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			s.seen[v] = true
			s.bumpVar(v)
			if s.level[v] == len(s.trailLim) {
				counter++
			} else {
				learnt = append(learnt, q)
			}
		}
		// Find next literal on the trail to resolve.
		for {
			p = s.trail[idx]
			idx--
			if s.seen[litVar(p)-1] {
				break
			}
		}
		counter--
		s.seen[litVar(p)-1] = false
		if counter == 0 {
			break
		}
		confl = s.reason[litVar(p)-1]
		// Move p to front convention: reason clause's first literal is p.
		cl2 := &s.clauses[confl]
		if cl2.lits[0] != p {
			for k := range cl2.lits {
				if cl2.lits[k] == p {
					cl2.lits[0], cl2.lits[k] = cl2.lits[k], cl2.lits[0]
					break
				}
			}
		}
	}
	learnt[0] = litNeg(p)

	// Clear seen flags and compute backjump level.
	bj := 0
	for _, q := range learnt[1:] {
		v := litVar(q) - 1
		if s.level[v] > bj {
			bj = s.level[v]
		}
	}
	for _, q := range learnt[1:] {
		s.seen[litVar(q)-1] = false
	}
	// Place a literal of the backjump level second (watch invariant).
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[litVar(learnt[i])-1] > s.level[litVar(learnt[maxI])-1] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
	}
	return learnt, bj
}

func (s *Solver) cancelUntil(levelTarget int) {
	if len(s.trailLim) <= levelTarget {
		return
	}
	bound := s.trailLim[levelTarget]
	for i := len(s.trail) - 1; i >= bound; i-- {
		v := litVar(s.trail[i]) - 1
		s.assign[v] = 0
		s.reason[v] = noReason
		if s.heapPos[v] < 0 {
			s.heapInsert(v)
		}
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:levelTarget]
	s.qhead = len(s.trail)
}

// pickBranch selects an unassigned variable of maximal activity.
func (s *Solver) pickBranch() (uint32, bool) {
	for len(s.heap) > 0 {
		v := s.heap[0]
		s.heapRemoveTop()
		if s.assign[v] == 0 {
			if s.phase[v] {
				return uint32(v+1) << 1, true
			}
			return uint32(v+1)<<1 | 1, true
		}
	}
	return 0, false
}

// reduceDB deletes half of the learnt clauses with the lowest activity.
func (s *Solver) reduceDB() {
	if s.nLearnt < s.maxLearnt {
		return
	}
	// Collect learnt clause activities.
	var acts []float64
	for i := range s.clauses {
		c := &s.clauses[i]
		if c.learnt && !c.deleted {
			acts = append(acts, c.act)
		}
	}
	if len(acts) == 0 {
		return
	}
	// Median by nth-element approximation: full sort is fine here.
	median := quickMedian(acts)
	locked := func(idx int) bool {
		c := &s.clauses[idx]
		v := litVar(c.lits[0]) - 1
		return s.assign[v] != 0 && s.reason[v] == idx
	}
	for i := range s.clauses {
		c := &s.clauses[i]
		if c.learnt && !c.deleted && c.act < median && !locked(i) && len(c.lits) > 2 {
			c.deleted = true
			s.nLearnt--
		}
	}
	s.maxLearnt += s.maxLearnt / 10
}

func quickMedian(xs []float64) float64 {
	// Simple selection by partial sort on a copy.
	cp := append([]float64(nil), xs...)
	k := len(cp) / 2
	lo, hi := 0, len(cp)-1
	for lo < hi {
		pivot := cp[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for cp[i] < pivot {
				i++
			}
			for cp[j] > pivot {
				j--
			}
			if i <= j {
				cp[i], cp[j] = cp[j], cp[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			break
		}
	}
	return cp[k]
}

// luby computes the Luby restart sequence value for index i (1-based),
// using the standard iterative formulation.
func luby(i int) int {
	x := i - 1
	size, seq := 1, 0
	for size < x+1 {
		seq++
		size = 2*size + 1
	}
	for size-1 != x {
		size = (size - 1) >> 1
		seq--
		x %= size
	}
	return 1 << uint(seq)
}

// Solve decides satisfiability under the given assumption literals.
// After Sat, Value reports the model; after Unsat with assumptions, the
// conflict involved the assumptions or the formula is globally unsat.
func (s *Solver) Solve(assumptions ...int) Result {
	if s.unsat {
		return Unsat
	}
	s.cancelUntil(0)
	if s.propagate() != -1 {
		s.unsat = true
		return Unsat
	}

	restart := 1
	conflictBudget := 64 * luby(restart)
	conflicts := 0

	for {
		confl := s.propagate()
		if confl != -1 {
			conflicts++
			s.conflictC++
			if len(s.trailLim) == 0 {
				s.unsat = true
				return Unsat
			}
			if len(s.trailLim) <= len(assumptions) {
				// Conflict within assumption decisions.
				return Unsat
			}
			learnt, bj := s.analyze(confl)
			if bj < len(assumptions) {
				bj = len(assumptions)
			}
			s.cancelUntil(bj)
			if len(learnt) == 1 {
				s.cancelUntil(0)
				if s.value(learnt[0]) == -1 {
					s.unsat = true
					return Unsat
				}
				if s.value(learnt[0]) == 0 {
					s.enqueue(learnt[0], noReason)
				}
				if s.propagate() != -1 {
					s.unsat = true
					return Unsat
				}
				// Re-apply assumptions from scratch.
				if res, done := s.applyAssumptions(assumptions); done {
					return res
				}
				continue
			}
			idx := s.attachClause(clause{lits: learnt, learnt: true, act: s.claInc})
			s.enqueue(learnt[0], idx)
			s.varInc /= 0.95
			s.claInc /= 0.999
			continue
		}

		if conflicts >= conflictBudget {
			conflicts = 0
			restart++
			conflictBudget = 64 * luby(restart)
			s.cancelUntil(len(assumptions))
			s.reduceDB()
		}

		// Apply pending assumptions as decision levels.
		if len(s.trailLim) < len(assumptions) {
			a := lit(assumptions[len(s.trailLim)])
			switch s.value(a) {
			case 1:
				s.trailLim = append(s.trailLim, len(s.trail))
				continue
			case -1:
				return Unsat
			}
			s.trailLim = append(s.trailLim, len(s.trail))
			s.enqueue(a, noReason)
			continue
		}

		dec, ok := s.pickBranch()
		if !ok {
			return Sat
		}
		s.trailLim = append(s.trailLim, len(s.trail))
		s.enqueue(dec, noReason)
	}
}

// applyAssumptions re-enqueues assumptions after a root-level restart.
// done is true when a final result was determined.
func (s *Solver) applyAssumptions(assumptions []int) (Result, bool) {
	for len(s.trailLim) < len(assumptions) {
		a := lit(assumptions[len(s.trailLim)])
		switch s.value(a) {
		case -1:
			return Unsat, true
		case 1:
			s.trailLim = append(s.trailLim, len(s.trail))
			continue
		}
		s.trailLim = append(s.trailLim, len(s.trail))
		s.enqueue(a, noReason)
		if s.propagate() != -1 {
			return Unsat, true
		}
	}
	return Sat, false
}

// Value returns the model value of a variable after Sat. Unassigned
// variables (pure don't-cares) report false.
func (s *Solver) Value(v int) bool {
	if v <= 0 || v > s.nvars {
		panic(fmt.Sprintf("sat: variable %d out of range", v))
	}
	return s.assign[v-1] == 1
}

// NumVars returns the variable count.
func (s *Solver) NumVars() int { return s.nvars }

// NumClauses returns the count of live clauses (original + learnt).
func (s *Solver) NumClauses() int {
	n := 0
	for i := range s.clauses {
		if !s.clauses[i].deleted {
			n++
		}
	}
	return n
}

// Conflicts returns the total conflicts encountered (a work measure).
func (s *Solver) Conflicts() int { return s.conflictC }

// --- activity heap ---

func (s *Solver) heapLess(a, b int) bool { return s.activity[a] > s.activity[b] }

func (s *Solver) heapInsert(v int) {
	s.heapPos[v] = len(s.heap)
	s.heap = append(s.heap, v)
	s.heapUp(len(s.heap) - 1)
}

func (s *Solver) heapUp(i int) {
	v := s.heap[i]
	for i > 0 {
		p := (i - 1) / 2
		if !s.heapLess(v, s.heap[p]) {
			break
		}
		s.heap[i] = s.heap[p]
		s.heapPos[s.heap[i]] = i
		i = p
	}
	s.heap[i] = v
	s.heapPos[v] = i
}

func (s *Solver) heapRemoveTop() {
	v := s.heap[0]
	s.heapPos[v] = -1
	last := s.heap[len(s.heap)-1]
	s.heap = s.heap[:len(s.heap)-1]
	if len(s.heap) > 0 {
		s.heap[0] = last
		s.heapPos[last] = 0
		s.heapDown(0)
	}
}

func (s *Solver) heapDown(i int) {
	v := s.heap[i]
	n := len(s.heap)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		c := l
		if r := l + 1; r < n && s.heapLess(s.heap[r], s.heap[l]) {
			c = r
		}
		if !s.heapLess(s.heap[c], v) {
			break
		}
		s.heap[i] = s.heap[c]
		s.heapPos[s.heap[i]] = i
		i = c
	}
	s.heap[i] = v
	s.heapPos[v] = i
}
