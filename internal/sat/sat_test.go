package sat

import (
	"math/rand"
	"testing"
)

func TestTrivialSat(t *testing.T) {
	s := New()
	s.AddClause(1, 2)
	s.AddClause(-1)
	if s.Solve() != Sat {
		t.Fatal("expected SAT")
	}
	if s.Value(1) || !s.Value(2) {
		t.Fatalf("model wrong: v1=%v v2=%v", s.Value(1), s.Value(2))
	}
}

func TestTrivialUnsat(t *testing.T) {
	s := New()
	s.AddClause(1)
	if !s.AddClause(-1) {
		// AddClause may already detect the contradiction.
		return
	}
	if s.Solve() != Unsat {
		t.Fatal("expected UNSAT")
	}
}

func TestEmptyClauseUnsat(t *testing.T) {
	s := New()
	s.AddClause(1, -1) // tautology, ignored
	s.AddClause(2)
	s.AddClause(-2, 3)
	s.AddClause(-3, -2)
	if s.Solve() != Unsat {
		t.Fatal("expected UNSAT from chain")
	}
}

func TestPigeonhole(t *testing.T) {
	// 4 pigeons in 3 holes: classic small UNSAT instance that requires
	// real search. Var(p,h) = p*3 + h + 1.
	s := New()
	v := func(p, h int) int { return p*3 + h + 1 }
	for p := 0; p < 4; p++ {
		s.AddClause(v(p, 0), v(p, 1), v(p, 2))
	}
	for h := 0; h < 3; h++ {
		for p1 := 0; p1 < 4; p1++ {
			for p2 := p1 + 1; p2 < 4; p2++ {
				s.AddClause(-v(p1, h), -v(p2, h))
			}
		}
	}
	if s.Solve() != Unsat {
		t.Fatal("pigeonhole 4/3 must be UNSAT")
	}
}

func TestGraphColoringSat(t *testing.T) {
	// 3-colour a 5-cycle (possible). Var(n,c) = n*3 + c + 1.
	s := New()
	v := func(n, c int) int { return n*3 + c + 1 }
	edges := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}}
	for n := 0; n < 5; n++ {
		s.AddClause(v(n, 0), v(n, 1), v(n, 2))
	}
	for _, e := range edges {
		for c := 0; c < 3; c++ {
			s.AddClause(-v(e[0], c), -v(e[1], c))
		}
	}
	if s.Solve() != Sat {
		t.Fatal("5-cycle is 3-colourable")
	}
	// Check the model is a proper colouring.
	color := func(n int) int {
		for c := 0; c < 3; c++ {
			if s.Value(v(n, c)) {
				return c
			}
		}
		return -1
	}
	for _, e := range edges {
		if color(e[0]) == -1 || color(e[0]) == color(e[1]) {
			t.Fatalf("invalid colouring: edge %v has colours %d,%d", e, color(e[0]), color(e[1]))
		}
	}
}

func TestAssumptions(t *testing.T) {
	s := New()
	s.AddClause(-1, 2)
	s.AddClause(-2, 3)
	if s.Solve(1, -3) != Unsat {
		t.Fatal("1 & -3 contradicts the implications")
	}
	// Solver must remain usable after an assumption failure.
	if s.Solve(1) != Sat {
		t.Fatal("1 alone should be SAT")
	}
	if !s.Value(2) || !s.Value(3) {
		t.Fatal("implications not propagated under assumption")
	}
	if s.Solve(-3) != Sat {
		t.Fatal("-3 alone should be SAT")
	}
	if s.Value(1) {
		t.Fatal("-3 forces -1")
	}
}

// bruteForce checks satisfiability of a clause set by enumeration.
func bruteForce(nvars int, clauses [][]int) bool {
	for m := 0; m < 1<<uint(nvars); m++ {
		ok := true
		for _, cl := range clauses {
			sat := false
			for _, l := range cl {
				v := l
				if v < 0 {
					v = -v
				}
				val := m>>uint(v-1)&1 == 1
				if (l > 0) == val {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func TestRandom3SATAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const nvars = 9
	for iter := 0; iter < 300; iter++ {
		nclauses := 5 + rng.Intn(50)
		var clauses [][]int
		s := New()
		s.EnsureVars(nvars)
		contradicted := false
		for i := 0; i < nclauses; i++ {
			var cl []int
			for j := 0; j < 3; j++ {
				l := rng.Intn(nvars) + 1
				if rng.Intn(2) == 0 {
					l = -l
				}
				cl = append(cl, l)
			}
			clauses = append(clauses, cl)
			if !s.AddClause(cl...) {
				contradicted = true
			}
		}
		want := bruteForce(nvars, clauses)
		var got bool
		if contradicted {
			got = false
		} else {
			got = s.Solve() == Sat
		}
		if got != want {
			t.Fatalf("iter %d: solver=%v brute=%v clauses=%v", iter, got, want, clauses)
		}
		// If SAT, verify the model satisfies every clause.
		if got {
			for _, cl := range clauses {
				sat := false
				for _, l := range cl {
					v := l
					if v < 0 {
						v = -v
					}
					if (l > 0) == s.Value(v) {
						sat = true
						break
					}
				}
				if !sat {
					t.Fatalf("iter %d: model violates clause %v", iter, cl)
				}
			}
		}
	}
}

func TestRandomWithAssumptionsAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const nvars = 8
	for iter := 0; iter < 150; iter++ {
		var clauses [][]int
		s := New()
		s.EnsureVars(nvars)
		rootOK := true
		for i := 0; i < 4+rng.Intn(25); i++ {
			var cl []int
			for j := 0; j < 3; j++ {
				l := rng.Intn(nvars) + 1
				if rng.Intn(2) == 0 {
					l = -l
				}
				cl = append(cl, l)
			}
			clauses = append(clauses, cl)
			if !s.AddClause(cl...) {
				rootOK = false
			}
		}
		// Two random assumptions, as unit clauses for the brute force.
		a1 := rng.Intn(nvars) + 1
		if rng.Intn(2) == 0 {
			a1 = -a1
		}
		a2 := rng.Intn(nvars) + 1
		if rng.Intn(2) == 0 {
			a2 = -a2
		}
		bf := append(append([][]int{}, clauses...), []int{a1}, []int{a2})
		want := bruteForce(nvars, bf)
		var got bool
		if rootOK {
			got = s.Solve(a1, a2) == Sat
		}
		if got != want {
			t.Fatalf("iter %d: solver=%v brute=%v assumptions=%d,%d", iter, got, want, a1, a2)
		}
	}
}

func TestLargeChainPerformance(t *testing.T) {
	// A long implication chain plus random noise: checks the solver
	// handles thousands of variables without blowing up.
	s := New()
	const n = 20000
	for i := 1; i < n; i++ {
		s.AddClause(-i, i+1)
	}
	s.AddClause(1)
	if s.Solve() != Sat {
		t.Fatal("chain should be SAT")
	}
	if !s.Value(n) {
		t.Fatal("chain propagation incomplete")
	}
	if s.Solve(-n) != Unsat {
		t.Fatal("assuming -last contradicts the chain")
	}
}

func TestLubySequence(t *testing.T) {
	want := []int{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(i + 1); got != w {
			t.Fatalf("luby(%d) = %d, want %d", i+1, got, w)
		}
	}
}

func TestValuePanicsOutOfRange(t *testing.T) {
	s := New()
	s.AddClause(1)
	s.Solve()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Value(5)
}
