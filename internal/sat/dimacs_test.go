package sat

import (
	"bytes"
	"strings"
	"testing"
)

func TestParseDIMACSSat(t *testing.T) {
	in := `c a comment
p cnf 3 3
1 2 0
-1 3 0
-2 -3 0
`
	s := New()
	n, err := s.ParseDIMACS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("clauses = %d", n)
	}
	if s.Solve() != Sat {
		t.Fatal("expected SAT")
	}
}

func TestParseDIMACSUnsat(t *testing.T) {
	in := "p cnf 1 2\n1 0\n-1 0\n"
	s := New()
	if _, err := s.ParseDIMACS(strings.NewReader(in)); err != nil {
		t.Fatal(err)
	}
	if s.Solve() != Unsat {
		t.Fatal("expected UNSAT")
	}
}

func TestParseDIMACSMultilineClause(t *testing.T) {
	in := "p cnf 4 1\n1 2\n3 4 0\n"
	s := New()
	n, err := s.ParseDIMACS(strings.NewReader(in))
	if err != nil || n != 1 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if s.Solve() != Sat {
		t.Fatal("expected SAT")
	}
}

func TestParseDIMACSErrors(t *testing.T) {
	for _, in := range []string{
		"1 2 0\n",            // clause before problem line
		"p cnf x 1\n1 0\n",   // bad var count
		"p dnf 2 1\n1 0\n",   // wrong format tag
		"p cnf 2 1\n1 q 0\n", // bad literal
	} {
		s := New()
		if _, err := s.ParseDIMACS(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	clauses := [][]int{{1, -2}, {2, 3}, {-1, -3}}
	var buf bytes.Buffer
	if err := WriteDIMACS(&buf, 3, clauses); err != nil {
		t.Fatal(err)
	}
	s := New()
	n, err := s.ParseDIMACS(&buf)
	if err != nil || n != 3 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	res := s.Solve()
	// Brute force for reference.
	if want := bruteForce(3, clauses); (res == Sat) != want {
		t.Fatalf("solver=%v brute=%v", res == Sat, want)
	}
}
