package sat

import (
	"strings"
	"testing"
)

// FuzzParseDIMACS checks the DIMACS parser never panics and that any
// formula it accepts can be solved without crashing (with a small budget:
// fuzz inputs are tiny).
func FuzzParseDIMACS(f *testing.F) {
	f.Add("p cnf 3 2\n1 -2 0\n2 3 0\n")
	f.Add("c comment\np cnf 1 1\n1 0\n")
	f.Add("garbage")
	f.Fuzz(func(t *testing.T, in string) {
		if len(in) > 1<<12 {
			return
		}
		s := New()
		if _, err := s.ParseDIMACS(strings.NewReader(in)); err != nil {
			return
		}
		if s.NumVars() > 64 {
			return // keep solving cheap under the fuzzer
		}
		s.Solve()
	})
}
