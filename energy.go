package dagguise

import "dagguise/internal/energy"

// EnergyParams holds per-operation DRAM energies.
type EnergyParams = energy.Params

// EnergyCounts are the operation tallies of a simulation window.
type EnergyCounts = energy.Counts

// EnergyResult is a DRAM energy breakdown in nanojoules.
type EnergyResult = energy.Result

// DDR3EnergyDefaults returns representative 2Gb DDR3-1600 energies.
func DDR3EnergyDefaults() EnergyParams { return energy.DDR3Defaults() }

// EstimateEnergy computes the DRAM energy of a simulation window,
// including the cost of fake requests under the suppression optimisation
// of §4.4.
func EstimateEnergy(p EnergyParams, c EnergyCounts) (EnergyResult, error) {
	return energy.Estimate(p, c)
}

// FakeEnergyOverhead returns the fraction of total DRAM energy spent on
// fake requests.
func FakeEnergyOverhead(p EnergyParams, c EnergyCounts) (float64, error) {
	return energy.FakeOverhead(p, c)
}

// SuppressionSaving returns the energy saved by suppressing fakes instead
// of performing them at the DIMMs, as a fraction.
func SuppressionSaving(p EnergyParams, c EnergyCounts) (float64, error) {
	return energy.SuppressionSaving(p, c)
}
