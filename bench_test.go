// Benchmarks that regenerate every table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index), plus ablations over
// the design choices. Each benchmark reports the experiment's headline
// numbers as custom metrics, so
//
//	go test -bench=. -benchmem
//
// both exercises the full system and reprints the evaluation. Benchmarks
// use shortened measurement windows; the cmd/ tools run the full-length
// versions.
package dagguise_test

import (
	"testing"

	"dagguise/internal/attack"
	"dagguise/internal/camouflage"
	"dagguise/internal/config"
	"dagguise/internal/dram"
	"dagguise/internal/energy"
	"dagguise/internal/eval"
	"dagguise/internal/mem"
	"dagguise/internal/memctrl"
	"dagguise/internal/rdag"
	"dagguise/internal/sat"
	"dagguise/internal/shaper"
	"dagguise/internal/sim"
	"dagguise/internal/smt"
	"dagguise/internal/trace"
	"dagguise/internal/verify"
	"dagguise/internal/victim"
	"dagguise/internal/workload"

	"dagguise"
)

func benchOpts() eval.Options {
	return eval.Options{Warmup: 50_000, Window: 600_000}
}

// BenchmarkFigure1AttackPrimer measures the attack example of Figure 1:
// attacker probe latency under the four victim behaviours. Metrics:
// mean latency per scenario in cycles.
func BenchmarkFigure1AttackPrimer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := attack.Figure1Primer(150)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(rows[0].MeanLatency, "idle-cyc")
			b.ReportMetric(rows[1].MeanLatency, "diffbank-cyc")
			b.ReportMetric(rows[2].MeanLatency, "samerow-cyc")
			b.ReportMetric(rows[3].MeanLatency, "diffrow-cyc")
		}
	}
}

// BenchmarkFigure2CamouflageLeak measures the Figure 2 demonstration:
// Camouflage's per-position leakage versus its (hidden) aggregate
// histogram. Metrics: bits per probe position.
func BenchmarkFigure2CamouflageLeak(b *testing.B) {
	s0 := attack.Pattern{Gaps: []uint64{100}, Banks: []int{0, 1, 2, 3}}
	s1 := attack.Pattern{Gaps: []uint64{200}, Banks: []int{0, 1, 2, 3}}
	probe := attack.Probe{Bank: 0, Gap: 120}
	dist := camouflage.Distribution{Intervals: []uint64{200, 400}}
	for i := 0; i < b.N; i++ {
		res, err := attack.MeasureLeakage(config.Camouflage, rdag.Template{}, dist, s0, s1, probe, 120, 3)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(res.AggregateMI, "aggregate-MI-bits")
			b.ReportMetric(res.SequenceMI, "sequence-MI-bits")
		}
	}
}

// BenchmarkFigure5RunningExample replays the running example: the same
// secret pair under DAGguise must give exactly identical attacker
// latencies (metric: differing probe positions, expected 0).
func BenchmarkFigure5RunningExample(b *testing.B) {
	s0 := attack.Pattern{Gaps: []uint64{100}, Banks: []int{0, 1, 2, 3}}
	s1 := attack.Pattern{Gaps: []uint64{200}, Banks: []int{0, 1, 2, 3}}
	probe := attack.Probe{Bank: 0, Gap: 120}
	for i := 0; i < b.N; i++ {
		h0, err := attack.NewHarness(config.DAGguise, rdag.Template{}, camouflage.Distribution{}, 1)
		if err != nil {
			b.Fatal(err)
		}
		l0, err := h0.Run(s0, probe, 150, 0)
		if err != nil {
			b.Fatal(err)
		}
		h1, _ := attack.NewHarness(config.DAGguise, rdag.Template{}, camouflage.Distribution{}, 1)
		l1, err := h1.Run(s1, probe, 150, 0)
		if err != nil {
			b.Fatal(err)
		}
		diffs := 0
		for j := range l0 {
			if l0[j] != l1[j] {
				diffs++
			}
		}
		if i == b.N-1 {
			b.ReportMetric(float64(diffs), "differing-probes")
		}
		if diffs != 0 {
			b.Fatalf("DAGguise leaked: %d differing probes", diffs)
		}
	}
}

// BenchmarkFigure6TemplateGeneration instantiates the Figure 6 template
// unrollings (4x100 and 2x200) with validation.
func BenchmarkFigure6TemplateGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, tpl := range []rdag.Template{
			{Sequences: 4, Weight: 300, Banks: 8},
			{Sequences: 2, Weight: 600, Banks: 8},
		} {
			if _, err := tpl.Unroll(16); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFigure7ProfilingSweep runs the offline profiling sweep over the
// full 36-candidate search space. Metrics: selected template parameters.
func BenchmarkFigure7ProfilingSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := eval.Figure7(eval.Options{Warmup: 4_000, Window: 40_000})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(res.Selected.Sequences), "knee-sequences")
			b.ReportMetric(float64(res.Selected.Weight), "knee-weight-cyc")
		}
	}
}

// BenchmarkFigure9TwoCore runs the two-core overhead experiment on a
// representative co-runner subset (memory-bound, mixed, compute-bound).
// Metrics: geomean normalized IPC per scheme.
func BenchmarkFigure9TwoCore(b *testing.B) {
	opts := benchOpts()
	opts.Apps = []string{"lbm", "xz", "leela"}
	for i := 0; i < b.N; i++ {
		res, err := eval.Figure9(opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(res.FSBTAGeomean, "fsbta-norm-ipc")
			b.ReportMetric(res.DAGguiseGeomean, "dagguise-norm-ipc")
		}
	}
}

// BenchmarkFigure10EightCore runs the eight-core scaling experiment on one
// co-runner. Metrics: average normalized IPC per scheme.
func BenchmarkFigure10EightCore(b *testing.B) {
	opts := benchOpts()
	opts.Apps = []string{"x264"}
	for i := 0; i < b.N; i++ {
		res, err := eval.Figure10(opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(res.FSBTAGeomean, "fsbta-norm-ipc")
			b.ReportMetric(res.DAGguiseGeomean, "dagguise-norm-ipc")
		}
	}
}

// BenchmarkTable1SecurityComparison quantifies the security column of the
// design-goals table: per-scheme mutual information. Metrics: sequence MI
// of the insecure baseline, Camouflage and DAGguise.
func BenchmarkTable1SecurityComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := eval.Table1(100, 2)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range rows {
				switch r.Scheme {
				case config.Insecure:
					b.ReportMetric(r.SequenceMI, "insecure-MI")
				case config.Camouflage:
					b.ReportMetric(r.SequenceMI, "camouflage-MI")
				case config.DAGguise:
					b.ReportMetric(r.SequenceMI, "dagguise-MI")
				}
			}
		}
	}
}

// BenchmarkTable2BaselineConfig measures the simulated machine's raw
// memory path using the Table 2 parameters: uncontended read latency and
// peak streaming bandwidth. Metrics: cycles and GB/s.
func BenchmarkTable2BaselineConfig(b *testing.B) {
	cfg := config.Default(2, config.Insecure)
	if err := cfg.Validate(); err != nil {
		b.Fatal(err)
	}
	m := mem.MustMapper(cfg.Geometry)
	for i := 0; i < b.N; i++ {
		dev := dram.New(cfg.Timing, m, false)
		ctrl := memctrl.New(dev, m, memctrl.FRFCFS{}, 32)
		served := 0
		id := uint64(0)
		var now uint64
		for served < 2000 {
			if !ctrl.Full() {
				id++
				ctrl.Enqueue(mem.Request{ID: id, Addr: id * 64}, now)
			}
			served += len(ctrl.Tick(now))
			now++
		}
		if i == b.N-1 {
			b.ReportMetric(float64(dev.UncontendedReadLatency()), "read-latency-cyc")
			gbps := float64(served*64) * sim.CPUFrequencyHz / float64(now) / 1e9
			b.ReportMetric(gbps, "peak-GBps")
		}
	}
}

// BenchmarkTable3Area evaluates the hardware cost model. Metrics: the
// Table 3 numbers.
func BenchmarkTable3Area(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := dagguise.EstimateArea(dagguise.Table3AreaConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(res.ComputationGates), "gates")
			b.ReportMetric(res.TotalAreaMM2*1000, "total-area-milli-mm2")
		}
	}
}

// BenchmarkVerificationKInduction runs the full formal proof (base step,
// strengthened induction, determinism side condition) plus the
// leaky-shaper detection. Metrics: minimal proven K and the leak's
// detection depth.
func BenchmarkVerificationKInduction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		v, err := verify.NewVerifier(verify.DefaultModel())
		if err != nil {
			b.Fatal(err)
		}
		k, err := v.MinimalK(12)
		if err != nil {
			b.Fatal(err)
		}
		leaky := verify.DefaultModel()
		leaky.Leaky = true
		lv, _ := verify.NewVerifier(leaky)
		depth, _, err := lv.DetectionDepth(16)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(k), "proven-K")
			b.ReportMetric(float64(depth), "leak-depth")
		}
	}
}

// --- Ablations over the design choices called out in DESIGN.md ---

func docdistLoop(b *testing.B) trace.Source {
	b.Helper()
	tr, err := victim.DocDistTrace(11, victim.DefaultDocDist())
	if err != nil {
		b.Fatal(err)
	}
	return &trace.Loop{Inner: tr}
}

func runPair(b *testing.B, scheme config.Scheme, defense rdag.Template, mutate func(*config.SystemConfig)) sim.Result {
	b.Helper()
	cfg := config.Default(2, scheme)
	if mutate != nil {
		mutate(&cfg)
	}
	p, err := workload.ByName("lbm")
	if err != nil {
		b.Fatal(err)
	}
	sys, err := sim.New(cfg, []sim.CoreSpec{
		{Name: "docdist", Source: docdistLoop(b), Protected: scheme != config.Insecure, Defense: defense},
		{Name: "lbm", Source: workload.MustSource(p, 5)},
	})
	if err != nil {
		b.Fatal(err)
	}
	return sys.Measure(50_000, 600_000)
}

// BenchmarkAblationClosedVsOpenRow quantifies the cost of the closed-row
// policy DAGguise requires to hide row-buffer state. Metrics: total system
// bandwidth under each policy on the insecure scheduler.
func BenchmarkAblationClosedVsOpenRow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		open := runPair(b, config.Insecure, rdag.Template{}, func(c *config.SystemConfig) { c.ClosedRow = false })
		closed := runPair(b, config.Insecure, rdag.Template{}, func(c *config.SystemConfig) { c.ClosedRow = true })
		if i == b.N-1 {
			b.ReportMetric(open.TotalGBps, "open-row-GBps")
			b.ReportMetric(closed.TotalGBps, "closed-row-GBps")
		}
	}
}

// BenchmarkAblationTemplateDensity sweeps defense rDAG density on the
// two-core pair: denser templates help the victim and hurt the co-runner.
// Metrics: victim and co-runner IPC at the sparsest and densest points.
func BenchmarkAblationTemplateDensity(b *testing.B) {
	templates := []rdag.Template{
		{Sequences: 1, Weight: 900, WriteRatio: 0.001, Banks: 8},
		{Sequences: 4, Weight: 300, WriteRatio: 0.001, Banks: 8},
		{Sequences: 8, Weight: 150, WriteRatio: 0.001, Banks: 8},
	}
	for i := 0; i < b.N; i++ {
		var results []sim.Result
		for _, tpl := range templates {
			results = append(results, runPair(b, config.DAGguise, tpl, nil))
		}
		if i == b.N-1 {
			b.ReportMetric(results[0].Cores[0].IPC, "sparse-victim-ipc")
			b.ReportMetric(results[len(results)-1].Cores[0].IPC, "dense-victim-ipc")
			b.ReportMetric(results[0].Cores[1].IPC, "sparse-corunner-ipc")
			b.ReportMetric(results[len(results)-1].Cores[1].IPC, "dense-corunner-ipc")
		}
	}
}

// BenchmarkAblationQueueDepth varies the shaper's private queue depth.
// Metrics: victim IPC at depth 2 and depth 32.
func BenchmarkAblationQueueDepth(b *testing.B) {
	run := func(depth int) float64 {
		m := mem.MustMapper(config.Default(2, config.DAGguise).Geometry)
		driver := rdag.MustPatternDriver(rdag.Template{Sequences: 8, Weight: 150, WriteRatio: 0.001, Banks: 8})
		next := uint64(1 << 40)
		sh := shaper.New(1, driver, m, depth, func() uint64 { next++; return next }, 3)
		// Saturate the shaper with a synthetic enqueue/response loop and
		// measure forwarded throughput.
		src := docdistLoop(b)
		var forwarded uint64
		type flight struct {
			at   uint64
			resp mem.Response
		}
		var flights []flight
		for now := uint64(0); now < 150_000; now++ {
			if !sh.Full() {
				op, _ := src.Next()
				sh.Enqueue(mem.Request{ID: now | 1<<50, Addr: op.Addr, Kind: mem.Read, Domain: 1, Issue: now}, now)
			}
			for _, r := range sh.Tick(now) {
				flights = append(flights, flight{now + 90, mem.Response{ID: r.ID, Fake: r.Fake, Domain: 1}})
			}
			keep := flights[:0]
			for _, f := range flights {
				if f.at <= now {
					if deliver, _ := sh.OnResponse(f.resp, now); deliver {
						forwarded++
					}
				} else {
					keep = append(keep, f)
				}
			}
			flights = keep
		}
		return float64(forwarded)
	}
	for i := 0; i < b.N; i++ {
		shallow := run(2)
		deep := run(32)
		if i == b.N-1 {
			b.ReportMetric(shallow, "depth2-forwarded")
			b.ReportMetric(deep, "depth32-forwarded")
		}
	}
}

// BenchmarkAblationFakeRate measures the fake-request fraction as victim
// demand varies: a starved defense rDAG is mostly fakes. Metrics: fake
// fraction with a dense versus sparse victim.
func BenchmarkAblationFakeRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := runPair(b, config.DAGguise, rdag.Template{Sequences: 8, Weight: 150, WriteRatio: 0.001, Banks: 8}, nil)
		v := res.Cores[0]
		total := v.ShaperFakes + v.ShaperForwarded
		if total == 0 {
			b.Fatal("shaper idle")
		}
		if i == b.N-1 {
			b.ReportMetric(float64(v.ShaperFakes)/float64(total), "fake-fraction")
		}
	}
}

// BenchmarkAblationRowAwareDAG evaluates the §4.4 row-buffer-aware
// extension: a defense rDAG that encodes its own row-hit pattern lets the
// machine keep the open-row policy instead of auto-precharging after every
// access. Metrics: victim and co-runner IPC under the base (closed-row)
// and row-aware (open-row) defenses.
func BenchmarkAblationRowAwareDAG(b *testing.B) {
	base := rdag.Template{Sequences: 8, Weight: 150, WriteRatio: 0.25, Banks: 8}
	rowAware := base
	rowAware.RowHitRatio = 0.5
	for i := 0; i < b.N; i++ {
		closed := runPair(b, config.DAGguise, base, nil)
		open := runPair(b, config.DAGguise, rowAware, nil)
		if i == b.N-1 {
			b.ReportMetric(closed.Cores[0].IPC, "closedrow-victim-ipc")
			b.ReportMetric(open.Cores[0].IPC, "rowaware-victim-ipc")
			b.ReportMetric(closed.Cores[1].IPC, "closedrow-corunner-ipc")
			b.ReportMetric(open.Cores[1].IPC, "rowaware-corunner-ipc")
		}
	}
}

// BenchmarkAblationSecureSchedulers compares all three partitioning
// baselines on the same pair. Metrics: system average normalized IPC.
func BenchmarkAblationSecureSchedulers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base := runPair(b, config.Insecure, rdag.Template{}, nil)
		var avgs []float64
		for _, scheme := range []config.Scheme{config.FixedService, config.FSBTA, config.TemporalPartitioning} {
			r := runPair(b, scheme, rdag.Template{}, nil)
			avg := (r.Cores[0].IPC/base.Cores[0].IPC + r.Cores[1].IPC/base.Cores[1].IPC) / 2
			avgs = append(avgs, avg)
		}
		if i == b.N-1 {
			b.ReportMetric(avgs[0], "fs-avg-norm")
			b.ReportMetric(avgs[1], "fsbta-avg-norm")
			b.ReportMetric(avgs[2], "tp-avg-norm")
		}
	}
}

// BenchmarkAblationFakeEnergy quantifies the §4.4 energy discussion: the
// DRAM energy overhead of fake requests under the suppression optimisation
// the paper adopts, and what suppression saves versus performing the fakes
// at the DIMMs. Metrics: fake energy fraction and suppression saving.
func BenchmarkAblationFakeEnergy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := config.Default(2, config.DAGguise)
		p, err := workload.ByName("xz")
		if err != nil {
			b.Fatal(err)
		}
		sys, err := sim.New(cfg, []sim.CoreSpec{
			{Name: "docdist", Source: docdistLoop(b), Protected: true,
				Defense: rdag.Template{Sequences: 8, Weight: 150, WriteRatio: 0.25, Banks: 8}},
			{Name: "xz", Source: workload.MustSource(p, 5)},
		})
		if err != nil {
			b.Fatal(err)
		}
		res := sys.Measure(50_000, 600_000)
		ctrlStats := sys.Controller().Stats()
		_, misses, conflicts, refreshes := sys.Controller().Device().Stats()
		counts := energy.Counts{
			Activates:       misses + conflicts,
			Reads:           safeSub(ctrlStats.Reads, ctrlStats.Fakes),
			Writes:          ctrlStats.Writes,
			SuppressedFakes: ctrlStats.Fakes,
			Refreshes:       refreshes,
			Cycles:          res.Cycles / 3, // CPU -> DRAM cycles
			FreqMHz:         800,
		}
		overhead, err := energy.FakeOverhead(energy.DDR3Defaults(), counts)
		if err != nil {
			b.Fatal(err)
		}
		saving, err := energy.SuppressionSaving(energy.DDR3Defaults(), counts)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(overhead, "fake-energy-fraction")
			b.ReportMetric(saving, "suppression-saving")
		}
	}
}

// BenchmarkAblationBTAStride quantifies what the hazard-safe FS-BTA slot
// stride costs versus the paper's aggressive tRC/3 stride (which
// TestAggressiveBTAStrideLeaks shows to leak through bus turnarounds).
// Metrics: system average normalized IPC under each stride.
func BenchmarkAblationBTAStride(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base := runPair(b, config.Insecure, rdag.Template{}, nil)
		safe := runPair(b, config.FSBTA, rdag.Template{}, nil)
		aggressive := runPair(b, config.FSBTA, rdag.Template{}, func(c *config.SystemConfig) {
			c.FSBTAStrideDRAM = 13
		})
		norm := func(r sim.Result) float64 {
			return (r.Cores[0].IPC/base.Cores[0].IPC + r.Cores[1].IPC/base.Cores[1].IPC) / 2
		}
		if i == b.N-1 {
			b.ReportMetric(norm(safe), "safe-stride-norm")
			b.ReportMetric(norm(aggressive), "trc3-stride-norm")
		}
	}
}

// BenchmarkSection7SMTChannel runs the §7 generalisation: the SMT
// functional-unit port channel with and without the DAGguise port shaper.
// Metrics: leaked bits per probe in each mode.
func BenchmarkSection7SMTChannel(b *testing.B) {
	s0 := []int{0, 1, 0, 0, 1, 0, 1, 0}
	s1 := []int{1, 1, 1, 0, 0, 1, 1, 1}
	for i := 0; i < b.N; i++ {
		res, err := smt.MeasureLeakage(s0, s1, smt.DefaultDefense(), 120)
		if err != nil {
			b.Fatal(err)
		}
		if res.ShapedMI != 0 {
			b.Fatalf("shaped SMT channel leaked %f bits", res.ShapedMI)
		}
		if i == b.N-1 {
			b.ReportMetric(res.InsecureMI, "unshaped-MI-bits")
			b.ReportMetric(res.ShapedMI, "shaped-MI-bits")
		}
	}
}

func safeSub(a, b uint64) uint64 {
	if b > a {
		return 0
	}
	return a - b
}

// --- Component microbenchmarks ---

// BenchmarkDRAMService measures raw transaction throughput of the DRAM
// timing model.
func BenchmarkDRAMService(b *testing.B) {
	m := mem.MustMapper(config.Default(1, config.Insecure).Geometry)
	dev := dram.New(config.DDR31600(), m, false)
	b.ResetTimer()
	var at uint64
	for i := 0; i < b.N; i++ {
		c := mem.Coord{Bank: i % 8, Row: uint64(i % 128)}
		r := dev.Service(c, mem.Read, at)
		at = r.DataDone
	}
}

// BenchmarkShaperTick measures the shaper's per-cycle cost.
func BenchmarkShaperTick(b *testing.B) {
	m := mem.MustMapper(config.Default(1, config.Insecure).Geometry)
	driver := rdag.MustPatternDriver(rdag.Template{Sequences: 8, Weight: 30, Banks: 8})
	next := uint64(0)
	sh := shaper.New(1, driver, m, 8, func() uint64 { next++; return next }, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range sh.Tick(uint64(i)) {
			sh.OnResponse(mem.Response{ID: r.ID, Fake: r.Fake, Domain: 1}, uint64(i))
		}
	}
}

// BenchmarkSATSolver measures the CDCL solver on a pigeonhole instance.
func BenchmarkSATSolver(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := sat.New()
		v := func(p, h int) int { return p*5 + h + 1 }
		for p := 0; p < 6; p++ {
			s.AddClause(v(p, 0), v(p, 1), v(p, 2), v(p, 3), v(p, 4))
		}
		for h := 0; h < 5; h++ {
			for p1 := 0; p1 < 6; p1++ {
				for p2 := p1 + 1; p2 < 6; p2++ {
					s.AddClause(-v(p1, h), -v(p2, h))
				}
			}
		}
		if s.Solve() != sat.Unsat {
			b.Fatal("pigeonhole 6/5 must be UNSAT")
		}
	}
}

// BenchmarkSystemTick measures the full-system per-cycle simulation cost
// (a two-core DAGguise machine).
func BenchmarkSystemTick(b *testing.B) {
	p, _ := workload.ByName("lbm")
	sys, err := sim.New(config.Default(2, config.DAGguise), []sim.CoreSpec{
		{Name: "docdist", Source: docdistLoop(b), Protected: true, Defense: rdag.Template{Sequences: 8, Weight: 150, WriteRatio: 0.001, Banks: 8}},
		{Name: "lbm", Source: workload.MustSource(p, 5)},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Tick()
	}
}
