// Command dagtrace records and inspects victim memory traces.
//
//	dagtrace -victim docdist -secret 42 -o docdist.trc   # record
//	dagtrace -i docdist.trc                               # inspect
//
// Recorded traces are the transmitters of the evaluation: the secret seed
// selects the private input (document or DNA read), and the trace captures
// the algorithm's secret-dependent memory behaviour.
package main

import (
	"flag"
	"fmt"
	"os"

	"dagguise/internal/trace"
	"dagguise/internal/victim"
)

func main() {
	vic := flag.String("victim", "docdist", "victim application: docdist or dna")
	secret := flag.Int64("secret", 42, "secret seed selecting the private input")
	out := flag.String("o", "", "write the recorded trace to this file")
	in := flag.String("i", "", "inspect an existing trace file instead of recording")
	flag.Parse()

	if *in != "" {
		inspect(*in)
		return
	}

	var tr *trace.Slice
	var err error
	switch *vic {
	case "docdist":
		tr, err = victim.DocDistTrace(*secret, victim.DefaultDocDist())
	case "dna":
		tr, err = victim.DNATrace(*secret, victim.DefaultDNA())
	default:
		err = fmt.Errorf("unknown victim %q", *vic)
	}
	if err != nil {
		fatal(err)
	}
	if *out == "" {
		summarize(*vic, tr)
		return
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := trace.Write(f, tr); err != nil {
		fatal(err)
	}
	fmt.Printf("recorded %d ops of %s (secret %d) to %s\n", len(tr.Ops), *vic, *secret, *out)
}

func inspect(path string) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	tr, err := trace.Read(f)
	if err != nil {
		fatal(err)
	}
	summarize(path, tr)
}

func summarize(name string, tr *trace.Slice) {
	st := trace.Summarize(tr)
	fmt.Printf("%s:\n", name)
	fmt.Printf("  %d memory ops (%d reads, %d writes, %d dependent)\n", st.Ops, st.Reads, st.Writes, st.Dependent)
	fmt.Printf("  %d instructions, %.1f memory ops per kilo-instruction\n",
		st.Instructions, float64(st.Ops)/float64(st.Instructions)*1000)
	fmt.Printf("  %d distinct cache lines (%.1f MiB footprint)\n",
		st.DistinctLines, float64(st.DistinctLines)*64/(1<<20))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dagtrace:", err)
	os.Exit(1)
}
