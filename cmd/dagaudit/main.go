// Command dagaudit runs the streaming leakage audit: it replays the
// Figure 5 secret pair under a protection scheme with audit taps on the
// attacker's probe stream and reports, window by window, the calibrated
// secret-conditioned statistics (Welch's t, Kolmogorov–Smirnov, bias-
// corrected mutual information with bootstrap confidence intervals). The
// exit code gates CI on the leakage budget.
//
//	dagaudit -scheme dagguise                  # audit DAGguise, exit 1 on leakage
//	dagaudit -scheme insecure -expect leak     # assert the baseline trips the detector
//	dagaudit -scheme fs-bta -json audit.json   # machine-readable report artifact
//	dagaudit -scheme dagguise -budget 0.02     # tighten the budget to 0.02 bits
//	dagaudit -scheme camouflage -metrics       # append the obs metrics table
//
// Exit codes: 0 = the expectation held (default expectation: within
// budget), 1 = it did not, 2 = usage error.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"dagguise/internal/attack"
	"dagguise/internal/audit"
	"dagguise/internal/config"
	"dagguise/internal/eval"
	"dagguise/internal/obs"
	"dagguise/internal/runner"
)

func main() {
	schemeName := flag.String("scheme", "dagguise", "scheme to audit (insecure, fs, fs-bta, tp, camouflage, dagguise)")
	probes := flag.Int("probes", 400, "attacker probes per secret run")
	window := flag.Int("window", 100, "samples per secret per audit window")
	stride := flag.Int("stride", 0, "window start spacing (0 = window, smaller overlaps)")
	bin := flag.Uint64("bin", 8, "MI histogram bin width in cycles (0 = unbinned)")
	budget := flag.Float64("budget", 0.05, "leakage budget in bits per window")
	alpha := flag.Float64("alpha", 0.01, "per-window false-positive rate of the calibrated detectors")
	perms := flag.Int("perms", 200, "permutations per window for threshold calibration")
	boot := flag.Int("boot", 200, "bootstrap resamples behind the MI confidence interval")
	conf := flag.Float64("confidence", 0.95, "MI confidence-interval level")
	seed := flag.Int64("seed", 1, "shaper and calibration seed")
	jsonOut := flag.String("json", "", "write the JSON audit report to this path")
	expect := flag.String("expect", "clean", "expected verdict gating the exit code: clean or leak")
	metrics := flag.Bool("metrics", false, "print the per-domain observability metrics table after the audit")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON (Perfetto-loadable) to this path")
	traceCap := flag.Int("trace-cap", obs.DefaultTraceCap, "event trace ring capacity")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	interval := flag.Duration("metrics-interval", 0, "print periodic metric delta snapshots to stderr (e.g. 10s)")
	timeout := flag.Duration("timeout", 0, "abort the audit after this long (0 = no deadline)")
	flag.Parse()

	ctx, cancel := runner.WithSignals(context.Background())
	defer cancel()
	if *timeout > 0 {
		var tcancel context.CancelFunc
		ctx, tcancel = context.WithTimeout(ctx, *timeout)
		defer tcancel()
	}

	if *expect != "clean" && *expect != "leak" {
		fmt.Fprintf(os.Stderr, "dagaudit: -expect must be clean or leak, got %q\n", *expect)
		os.Exit(2)
	}
	scheme, err := config.ParseScheme(*schemeName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dagaudit:", err)
		os.Exit(2)
	}

	if *pprofAddr != "" {
		addr, err := obs.ServePprof(*pprofAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "dagaudit: pprof at http://%s/debug/pprof/\n", addr)
	}

	cfg := audit.Config{
		Window:       *window,
		Stride:       *stride,
		BinWidth:     *bin,
		Budget:       *budget,
		Alpha:        *alpha,
		Permutations: *perms,
		Bootstrap:    *boot,
		Confidence:   *conf,
		Seed:         *seed,
	}

	var mx *obs.Registry
	var tr *obs.Tracer
	var attach func(*attack.Harness)
	if *metrics || *interval > 0 {
		mx = obs.NewRegistry(3) // system slot + victim + attacker domains
	}
	if *traceOut != "" {
		tr = obs.NewTracer(*traceCap)
	}
	if mx != nil || tr != nil {
		attach = func(h *attack.Harness) { h.Observe(mx, tr) }
	}
	if *interval > 0 {
		stop := obs.StartIntervalDump(os.Stderr, mx, *interval)
		defer stop()
	}

	rep, err := eval.AuditCtx(ctx, scheme, *probes, cfg, attach)
	if err != nil {
		if errors.Is(err, audit.ErrCanceled) {
			fmt.Fprintln(os.Stderr, "dagaudit: interrupted:", err)
			os.Exit(3)
		}
		fatal(err)
	}
	fmt.Print(rep.Format())
	if *metrics {
		fmt.Println()
		fmt.Print(obs.FormatSummary(mx.Snapshot(), 0))
	}
	if tr != nil {
		if err := obs.WriteChromeTraceFile(*traceOut, tr); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "dagaudit: wrote %d trace events to %s (open in https://ui.perfetto.dev)\n", tr.Len(), *traceOut)
	}
	if *jsonOut != "" {
		data, err := rep.JSON()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "dagaudit: wrote audit report to %s\n", *jsonOut)
	}

	ok := rep.WithinBudget == (*expect == "clean")
	if !ok {
		if rep.WithinBudget {
			fmt.Fprintf(os.Stderr, "dagaudit: expected leakage but %s stayed within the %.4f-bit budget\n",
				scheme, cfg.Budget)
		} else {
			fmt.Fprintf(os.Stderr, "dagaudit: %s exceeded the %.4f-bit budget at window %d (cycle %d)\n",
				scheme, cfg.Budget, rep.FirstExceeded, rep.FirstExceededCycle)
		}
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dagaudit:", err)
	os.Exit(1)
}
