// Command dagsim runs the multi-programmed performance experiments and
// prints the Figure 9 (two-core) or Figure 10 (eight-core) rows: the
// normalized IPC of the protected victims and the SPEC-like co-runners
// under FS-BTA and DAGguise, relative to the insecure baseline.
//
// Usage:
//
//	dagsim -cores 2                 # Figure 9 over all 15 co-runners
//	dagsim -cores 8 -apps lbm,xz    # Figure 10 on a subset
//	dagsim -cores 2 -window 200000  # shorter measurement window
//	dagsim -metrics                 # append the per-domain metrics table
//	dagsim -trace-out run.json      # export a Perfetto-loadable event trace
//	dagsim -cycle-profile           # append the per-component cycle-attribution table
//	dagsim -pprof localhost:6060    # live pprof endpoints while it runs
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"dagguise/internal/eval"
	"dagguise/internal/fleet"
	"dagguise/internal/obs"
	"dagguise/internal/runner"
	"dagguise/internal/sim"
	"dagguise/internal/telem"
)

func main() {
	cores := flag.Int("cores", 2, "system size: 2 (Figure 9) or 8 (Figure 10)")
	apps := flag.String("apps", "", "comma-separated co-runner subset (default: all 15)")
	warmup := flag.Uint64("warmup", eval.DefaultOptions().Warmup, "warmup cycles per run")
	window := flag.Uint64("window", eval.DefaultOptions().Window, "measurement cycles per run")
	metrics := flag.Bool("metrics", false, "print the per-domain observability metrics table after the experiment")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON (Perfetto-loadable) to this path")
	traceCap := flag.Int("trace-cap", obs.DefaultTraceCap, "event trace ring capacity")
	cycleProf := flag.Bool("cycle-profile", false, "print the per-component cycle-attribution table after the experiment")
	cycleProfOut := flag.String("cycle-profile-out", "", "write the cycle-attribution report as JSON to this path (implies profiling)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	interval := flag.Duration("metrics-interval", 0, "print periodic metric delta snapshots to stderr (e.g. 10s)")
	ckptDir := flag.String("checkpoint-dir", "", "persist completed measurements here so an interrupted sweep can resume")
	resume := flag.Bool("resume", false, "resume a sweep from -checkpoint-dir, skipping measurements already done")
	join := flag.Bool("join", false, "cooperate with other dagsim processes on one -checkpoint-dir: figure rows are claimed through lease files and the results cache is lease-merged")
	proc := flag.String("proc", "", "process name for -join (lease owner id and telemetry stream name; default p<pid>)")
	leaseTTL := flag.Duration("lease-ttl", 0, "row lease TTL for -join — an unrenewed lease is presumed dead and stealable after this long (0 = 10s)")
	timeout := flag.Duration("timeout", 0, "stop the sweep after this long (0 = no deadline); combine with -checkpoint-dir to resume later")
	workers := flag.Int("workers", 1, "parallel per-app figure rows (0 = GOMAXPROCS); output is identical at any worker count")
	telemDir := flag.String("telem-dir", "", "append per-row lifecycle telemetry (telem-worker-dagsim.ndjson) to this fleet telemetry directory")
	flag.Parse()

	if *workers <= 0 {
		*workers = runtime.GOMAXPROCS(0)
	}
	if *workers > 1 && (*cycleProf || *cycleProfOut != "") {
		fmt.Fprintln(os.Stderr, "dagsim: cycle profiling is lap-clocked and single-threaded; forcing -workers 1")
		*workers = 1
	}

	ctx, cancel := runner.WithSignals(context.Background())
	defer cancel()
	if *timeout > 0 {
		var tcancel context.CancelFunc
		ctx, tcancel = context.WithTimeout(ctx, *timeout)
		defer tcancel()
	}

	opts := eval.Options{Warmup: *warmup, Window: *window, Ctx: ctx, Workers: *workers}
	if *apps != "" {
		opts.Apps = strings.Split(*apps, ",")
	}
	if *resume && *ckptDir == "" {
		fmt.Fprintln(os.Stderr, "dagsim: -resume requires -checkpoint-dir")
		os.Exit(2)
	}
	if *join && *ckptDir == "" {
		fmt.Fprintln(os.Stderr, "dagsim: -join requires -checkpoint-dir (the shared sweep directory)")
		os.Exit(2)
	}
	owner := *proc
	if owner == "" {
		owner = fmt.Sprintf("p%d", os.Getpid())
	}
	cachePath := ""
	if *ckptDir != "" {
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			fatal(err)
		}
		cachePath = filepath.Join(*ckptDir, "results-cache.json")
		if _, err := os.Stat(cachePath); err == nil && !*resume && !*join {
			fmt.Fprintf(os.Stderr, "dagsim: %s already holds completed measurements; pass -resume to continue them or remove the directory to start over\n", cachePath)
			os.Exit(2)
		}
		if *join {
			// Cooperating processes: the cache is lease-merged and figure
			// rows are claimed through per-row lease files, so K dagsim
			// invocations split the sweep and each still prints the full
			// (byte-identical) figure.
			lm := fleet.NewLeaseManager(*ckptDir, *leaseTTL, nil)
			cache, err := eval.OpenSharedRunCache(cachePath, lm, owner)
			if err != nil {
				fatal(err)
			}
			opts.Cache = cache
			opts.Claim = func(app string) (func(), bool) {
				h, err := lm.Acquire("row-"+app, owner)
				if err != nil {
					return nil, false
				}
				stop := lm.Heartbeat(ctx, h, nil)
				return func() {
					stop()
					lm.Release(h)
				}, true
			}
			fmt.Fprintf(os.Stderr, "dagsim: joined shared sweep in %s as %s\n", *ckptDir, owner)
		} else {
			cache, err := eval.OpenRunCache(cachePath)
			if err != nil {
				fatal(err)
			}
			if n := cache.Len(); n > 0 {
				fmt.Fprintf(os.Stderr, "dagsim: resuming, %d measurements already cached\n", n)
			}
			opts.Cache = cache
		}
	}

	if *telemDir != "" {
		stream := "dagsim"
		if *join {
			stream = "dagsim-" + owner
		}
		em, err := telem.OpenEmitter(*telemDir, stream, "")
		if err != nil {
			fatal(err)
		}
		defer em.Close()
		// Row events are ops-plane lifecycle records: a dagtop pointed at
		// the directory shows sweep progress per co-runner app.
		opts.Row = func(app, event string) {
			em.Shard(app, event, "", 0)
			_ = em.Sync()
		}
		fmt.Fprintf(os.Stderr, "dagsim: telemetry stream in %s\n", *telemDir)
	}

	if *pprofAddr != "" {
		addr, err := obs.ServePprof(*pprofAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "dagsim: pprof at http://%s/debug/pprof/\n", addr)
	}

	var mx *obs.Registry
	var tr *obs.Tracer
	var prof *obs.CycleProfile
	var simCycles uint64
	if *metrics || *interval > 0 {
		mx = obs.NewRegistry(*cores + 1)
	}
	if *traceOut != "" {
		tr = obs.NewTracer(*traceCap)
	}
	if *cycleProf || *cycleProfOut != "" {
		prof = obs.NewCycleProfile()
	}
	if mx != nil || tr != nil || prof != nil {
		// Attach can run from parallel row workers; registry and tracer are
		// thread-safe and the cycle counter is atomic.
		opts.Attach = func(sys *sim.System) {
			atomic.AddUint64(&simCycles, *warmup+*window)
			sys.Observe(mx, tr)
			sys.Profile(prof)
		}
	}
	if *interval > 0 {
		stop := obs.StartIntervalDump(os.Stderr, mx, *interval)
		defer stop()
	}
	start := time.Now()
	defer func() {
		if *metrics {
			fmt.Println()
			fmt.Print(obs.FormatSummary(mx.Snapshot(), atomic.LoadUint64(&simCycles)))
		}
		if prof != nil {
			// Coverage is against the whole sweep wall clock, so per-run
			// build and evaluation glue lands in the harness bucket.
			rep := prof.Report(time.Since(start), atomic.LoadUint64(&simCycles))
			if *cycleProf {
				fmt.Println()
				fmt.Print(rep.String())
			}
			if *cycleProfOut != "" {
				if err := writeReport(*cycleProfOut, rep); err != nil {
					fatal(err)
				}
				fmt.Fprintf(os.Stderr, "dagsim: wrote cycle-attribution report to %s\n", *cycleProfOut)
			}
		}
		if tr != nil {
			if err := obs.WriteChromeTraceFile(*traceOut, tr); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "dagsim: wrote %d trace events to %s (open in https://ui.perfetto.dev)\n", tr.Len(), *traceOut)
		}
	}()

	switch *cores {
	case 2:
		res, err := eval.Figure9(opts)
		if err != nil {
			interrupted(err, cachePath)
			fatal(err)
		}
		fmt.Println("Figure 9: average normalized IPC, DocDist + one SPEC app on two cores")
		fmt.Print(eval.FormatFigure9(res))
		fmt.Printf("\nDAGguise vs FS-BTA system speedup: %.1f%%\n",
			(res.DAGguiseGeomean/res.FSBTAGeomean-1)*100)
	case 8:
		res, err := eval.Figure10(opts)
		if err != nil {
			interrupted(err, cachePath)
			fatal(err)
		}
		fmt.Println("Figure 10: average normalized IPC, 2xDocDist + 2xDNA + 4xSPEC on eight cores")
		fmt.Print(eval.FormatFigure10(res))
		fmt.Printf("\nDAGguise vs FS-BTA system speedup: %.1f%%\n",
			(res.DAGguiseGeomean/res.FSBTAGeomean-1)*100)
	default:
		fatal(fmt.Errorf("unsupported core count %d (use 2 or 8)", *cores))
	}
}

// interrupted exits with status 3 when the sweep stopped on a signal or
// deadline, pointing at the resume command if measurements were persisted.
func interrupted(err error, cachePath string) {
	if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
		return
	}
	fmt.Fprintln(os.Stderr, "dagsim: interrupted:", err)
	if cachePath != "" {
		fmt.Fprintln(os.Stderr, "dagsim: completed measurements saved; rerun with -resume to continue")
	}
	os.Exit(3)
}

// writeReport dumps the attribution report as JSON.
func writeReport(path string, rep *obs.ProfReport) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dagsim:", err)
	os.Exit(1)
}
