// Command daggen is the rDAG generation tool (the artifact's
// dag_generator.py): it instantiates a defense rDAG template and emits a
// finite unrolling as JSON or Graphviz DOT.
//
// Usage:
//
//	daggen -sequences 4 -weight 300 -banks 8 -unroll 4            # JSON
//	daggen -sequences 2 -weight 600 -banks 8 -unroll 8 -dot       # DOT
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"dagguise/internal/rdag"
)

func main() {
	sequences := flag.Int("sequences", 4, "parallel sequences")
	weight := flag.Uint64("weight", 300, "uniform edge weight in CPU cycles")
	writeRatio := flag.Float64("write-ratio", 0.001, "fraction of write vertices")
	banks := flag.Int("banks", 8, "banks in the machine")
	unroll := flag.Int("unroll", 4, "vertices per sequence in the output graph")
	dot := flag.Bool("dot", false, "emit Graphviz DOT instead of JSON")
	flag.Parse()

	tpl := rdag.Template{
		Sequences:  *sequences,
		Weight:     *weight,
		WriteRatio: *writeRatio,
		Banks:      *banks,
	}
	g, err := tpl.Unroll(*unroll)
	if err != nil {
		fmt.Fprintln(os.Stderr, "daggen:", err)
		os.Exit(1)
	}
	if *dot {
		fmt.Print(g.DOT("defense"))
		return
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(g); err != nil {
		fmt.Fprintln(os.Stderr, "daggen:", err)
		os.Exit(1)
	}
}
