// Command dagattack demonstrates the memory timing side channel and its
// mitigation:
//
//	dagattack -fig 1    # Figure 1: the attack primer on the insecure baseline
//	dagattack -table 1  # Table 1: leakage (mutual information) per scheme
package main

import (
	"flag"
	"fmt"
	"os"

	"dagguise/internal/eval"
)

func main() {
	fig := flag.Int("fig", 0, "figure to reproduce (1)")
	table := flag.Int("table", 0, "table to reproduce (1)")
	probes := flag.Int("probes", 200, "attacker probes per trial")
	trials := flag.Int("trials", 3, "trials per secret")
	flag.Parse()

	switch {
	case *fig == 1:
		rows, err := eval.Figure1Primer(*probes)
		if err != nil {
			fatal(err)
		}
		fmt.Println("Figure 1: attacker probe latency by victim behaviour (insecure baseline)")
		for _, r := range rows {
			fmt.Printf("  %-28s mean latency %7.1f cycles\n", r.Scenario, r.MeanLatency)
		}
	case *table == 1:
		rows, err := eval.Table1(*probes, *trials)
		if err != nil {
			fatal(err)
		}
		fmt.Println("Table 1: leakage of the Figure-5 secret pair per scheme")
		fmt.Printf("%-12s %12s %12s %10s %8s\n", "scheme", "aggregate MI", "sequence MI", "accuracy", "secure")
		for _, r := range rows {
			fmt.Printf("%-12s %12.4f %12.4f %10.3f %8v\n",
				r.Scheme, r.AggregateMI, r.SequenceMI, r.Accuracy, r.Secure)
		}
		fmt.Println("\nMI in bits per probe position; accuracy is a nearest-neighbour secret guesser (0.5 = chance)")
	default:
		fmt.Fprintln(os.Stderr, "dagattack: pass -fig 1 or -table 1")
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dagattack:", err)
	os.Exit(1)
}
