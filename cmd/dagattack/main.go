// Command dagattack demonstrates the memory timing side channel and its
// mitigation:
//
//	dagattack -fig 1          # Figure 1: the attack primer on the insecure baseline
//	dagattack -table 1        # Table 1: leakage per scheme, with calibrated thresholds
//	dagattack -table 1 -metrics               # append the per-domain metrics table
//	dagattack -fig 1 -trace-out attack.json   # export a Perfetto-loadable event trace
package main

import (
	"flag"
	"fmt"
	"os"

	"dagguise/internal/attack"
	"dagguise/internal/eval"
	"dagguise/internal/obs"
)

func main() {
	fig := flag.Int("fig", 0, "figure to reproduce (1)")
	table := flag.Int("table", 0, "table to reproduce (1)")
	probes := flag.Int("probes", 200, "attacker probes per trial")
	trials := flag.Int("trials", 3, "trials per secret")
	metrics := flag.Bool("metrics", false, "print the per-domain observability metrics table after the experiment")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON (Perfetto-loadable) to this path")
	traceCap := flag.Int("trace-cap", obs.DefaultTraceCap, "event trace ring capacity")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	interval := flag.Duration("metrics-interval", 0, "print periodic metric delta snapshots to stderr (e.g. 10s)")
	flag.Parse()

	if *pprofAddr != "" {
		addr, err := obs.ServePprof(*pprofAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "dagattack: pprof at http://%s/debug/pprof/\n", addr)
	}

	var mx *obs.Registry
	var tr *obs.Tracer
	var attach func(*attack.Harness)
	if *metrics || *interval > 0 {
		mx = obs.NewRegistry(3) // system slot + victim + attacker domains
	}
	if *traceOut != "" {
		tr = obs.NewTracer(*traceCap)
	}
	if mx != nil || tr != nil {
		attach = func(h *attack.Harness) { h.Observe(mx, tr) }
	}
	if *interval > 0 {
		stop := obs.StartIntervalDump(os.Stderr, mx, *interval)
		defer stop()
	}
	defer func() {
		if *metrics {
			fmt.Println()
			fmt.Print(obs.FormatSummary(mx.Snapshot(), 0))
		}
		if tr != nil {
			if err := obs.WriteChromeTraceFile(*traceOut, tr); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "dagattack: wrote %d trace events to %s (open in https://ui.perfetto.dev)\n", tr.Len(), *traceOut)
		}
	}()

	switch {
	case *fig == 1:
		rows, err := eval.Figure1PrimerObserved(*probes, attach)
		if err != nil {
			fatal(err)
		}
		fmt.Println("Figure 1: attacker probe latency by victim behaviour (insecure baseline)")
		for _, r := range rows {
			fmt.Printf("  %-28s mean latency %7.1f cycles\n", r.Scenario, r.MeanLatency)
		}
	case *table == 1:
		rows, err := eval.Table1Observed(*probes, *trials, attach)
		if err != nil {
			fatal(err)
		}
		fmt.Println("Table 1: leakage of the Figure-5 secret pair per scheme")
		fmt.Print(eval.FormatTable1(rows))
		fmt.Println("\nMI in bits per probe position with permutation-calibrated thresholds (1% FPR);")
		fmt.Println("accuracy is a nearest-neighbour secret guesser (0.5 = chance); secure is the")
		fmt.Println("measured verdict, claimed the paper's classification")
	default:
		fmt.Fprintln(os.Stderr, "dagattack: pass -fig 1 or -table 1")
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dagattack:", err)
	os.Exit(1)
}
