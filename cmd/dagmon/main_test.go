package main

import (
	"bytes"
	"testing"

	"dagguise/internal/obs"
)

func fleetAlerts() []obs.Alert {
	return []obs.Alert{
		{Seq: 1, T: 100, Rule: "straggler", Series: "straggler/shard-insecure-c0-s9", State: "firing", Value: 4.5, Threshold: 3, Op: ">=", Severity: obs.SeverityWarning},
		{Seq: 2, T: 100, Rule: "worker-stall", Series: "worker_stall/2", State: "firing", Value: 42, Threshold: 30, Op: ">=", Severity: obs.SeverityCritical},
		{Seq: 3, T: 200, Rule: "fleet-leak-budget-burn", Series: "leak_rate/insecure", State: "firing", Value: 1, Threshold: 0.5, Op: ">=", Severity: obs.SeverityCritical},
		{Seq: 4, T: 300, Rule: "leak-budget-burn", Series: "leak/insecure/shard-insecure-c0-s9", State: "resolved", Value: 0, Threshold: 0.5, Op: ">=", Severity: obs.SeverityInfo},
	}
}

// TestSinkGoldenNDJSON pins the exact output bytes of the alert sink:
// one JSON line per edge, with the shard/worker column extracted from
// fleet series names.
func TestSinkGoldenNDJSON(t *testing.T) {
	var buf bytes.Buffer
	s := &sink{w: &buf}
	for _, a := range fleetAlerts() {
		if err := s.emit(a, true); err != nil {
			t.Fatal(err)
		}
	}
	want := `{"seq":1,"t":100,"rule":"straggler","series":"straggler/shard-insecure-c0-s9","state":"firing","value":4.5,"threshold":3,"op":"\u003e=","severity":"warning","shard":"shard-insecure-c0-s9"}
{"seq":2,"t":100,"rule":"worker-stall","series":"worker_stall/2","state":"firing","value":42,"threshold":30,"op":"\u003e=","severity":"critical","worker":"2"}
{"seq":3,"t":200,"rule":"fleet-leak-budget-burn","series":"leak_rate/insecure","state":"firing","value":1,"threshold":0.5,"op":"\u003e=","severity":"critical"}
{"seq":4,"t":300,"rule":"leak-budget-burn","series":"leak/insecure/shard-insecure-c0-s9","state":"resolved","value":0,"threshold":0.5,"op":"\u003e=","severity":"info","shard":"shard-insecure-c0-s9"}
`
	if got := buf.String(); got != want {
		t.Fatalf("NDJSON output:\n%s\nwant:\n%s", got, want)
	}
}

func TestSinkMinSeverity(t *testing.T) {
	var buf bytes.Buffer
	s := &sink{w: &buf, minSev: obs.SeverityCritical}
	for _, a := range fleetAlerts() {
		if err := s.emit(a, true); err != nil {
			t.Fatal(err)
		}
	}
	want := `{"seq":2,"t":100,"rule":"worker-stall","series":"worker_stall/2","state":"firing","value":42,"threshold":30,"op":"\u003e=","severity":"critical","worker":"2"}
{"seq":3,"t":200,"rule":"fleet-leak-budget-burn","series":"leak_rate/insecure","state":"firing","value":1,"threshold":0.5,"op":"\u003e=","severity":"critical"}
`
	if got := buf.String(); got != want {
		t.Fatalf("-min-severity critical output:\n%s\nwant:\n%s", got, want)
	}

	// An alert without a severity ranks weakest and is dropped by any
	// filter; with no filter it passes.
	bare := obs.Alert{Seq: 9, Rule: "r", Series: "s", State: "firing", Op: ">="}
	buf.Reset()
	if err := s.emit(bare, true); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("severity-less alert passed a critical filter: %s", buf.String())
	}
	open := &sink{w: &buf}
	if err := open.emit(bare, true); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("unfiltered sink dropped a severity-less alert")
	}
}

func TestAnnotate(t *testing.T) {
	cases := []struct {
		series, shard, worker string
	}{
		{"straggler/s0", "s0", ""},
		{"worker_stall/3", "", "3"},
		{"leak/insecure/shard-a", "shard-a", ""},
		{"leak_rate/insecure", "", ""},
		{"queue_sat/shard0", "", ""},
	}
	for _, tc := range cases {
		got := annotate(obs.Alert{Series: tc.series})
		if got.Shard != tc.shard || got.Worker != tc.worker {
			t.Errorf("annotate(%s) = shard %q worker %q, want %q / %q",
				tc.series, got.Shard, got.Worker, tc.shard, tc.worker)
		}
	}
}

func TestAlertsURL(t *testing.T) {
	got, err := alertsURL("http://127.0.0.1:9470")
	if err != nil || got != "http://127.0.0.1:9470/v1/alerts" {
		t.Fatalf("alertsURL = %q, %v", got, err)
	}
	if _, err := alertsURL("127.0.0.1:9470"); err == nil {
		t.Fatal("relative URL accepted")
	}
}
