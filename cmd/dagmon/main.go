// Command dagmon is the alert-pipeline terminal: it either receives
// webhook deliveries from a dagauditd started with -alert-webhook, or
// tails a dagauditd /v1/alerts endpoint by polling. Every alert edge is
// written as one NDJSON line (append-only, crash-tolerant), so CI jobs
// and shell pipelines can gate on `grep` over the output file.
//
// Usage:
//
//	dagmon -listen 127.0.0.1:9801 -out alerts.ndjson   # webhook receiver
//	dagmon -tail http://127.0.0.1:9470                 # poll /v1/alerts
//	dagmon -tail http://127.0.0.1:9470 -once           # one poll, then exit
//
// In tail mode dagmon remembers the highest alert sequence number seen
// and only prints new edges, so restarting mid-stream never duplicates
// output lines for the same daemon instance. With -once it prints the
// full retained history exactly once — the CI-friendly snapshot mode.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"dagguise/internal/auditd"
	"dagguise/internal/obs"
)

func main() {
	listen := flag.String("listen", "", "run a webhook receiver on this address")
	tail := flag.String("tail", "", "poll this dagauditd base URL's /v1/alerts endpoint")
	interval := flag.Duration("interval", 2*time.Second, "poll cadence in tail mode")
	once := flag.Bool("once", false, "tail mode: poll once, print the retained history, exit")
	out := flag.String("out", "", "append NDJSON alert lines to this file instead of stdout")
	quiet := flag.Bool("quiet", false, "suppress the human-readable stderr line per alert")
	flag.Parse()

	if (*listen == "") == (*tail == "") {
		fmt.Fprintln(os.Stderr, "dagmon: exactly one of -listen or -tail is required")
		os.Exit(2)
	}

	sink, closeSink, err := openSink(*out)
	if err != nil {
		fatal(err)
	}
	defer closeSink()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *listen != "" {
		if err := runListener(ctx, *listen, sink, *quiet); err != nil {
			fatal(err)
		}
		return
	}
	if err := runTail(ctx, *tail, *interval, *once, sink, *quiet); err != nil {
		fatal(err)
	}
}

// sink serializes NDJSON alert lines to one writer.
type sink struct {
	mu sync.Mutex
	w  io.Writer
}

func openSink(path string) (*sink, func(), error) {
	if path == "" {
		return &sink{w: os.Stdout}, func() {}, nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	return &sink{w: f}, func() { f.Close() }, nil
}

// emit writes one alert as an NDJSON line and, unless quiet, a
// human-readable summary to stderr.
func (s *sink) emit(a obs.Alert, quiet bool) error {
	line, err := json.Marshal(a)
	if err != nil {
		return err
	}
	s.mu.Lock()
	_, err = s.w.Write(append(line, '\n'))
	s.mu.Unlock()
	if err != nil {
		return err
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "dagmon: [%s] %s %s value=%g (%s %g) seq=%d t=%d\n",
			a.State, a.Rule, a.Series, a.Value, a.Op, a.Threshold, a.Seq, a.T)
	}
	return nil
}

// runListener serves the webhook endpoint dagauditd -alert-webhook posts
// to, acking each alert after it is durably written.
func runListener(ctx context.Context, addr string, s *sink, quiet bool) error {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /", func(w http.ResponseWriter, r *http.Request) {
		var a obs.Alert
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&a); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := s.emit(a, quiet); err != nil {
			// Let the notifier's retry loop redeliver rather than drop.
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	srv := &http.Server{Addr: addr, Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "dagmon: webhook receiver on http://%s\n", addr)
		errc <- srv.ListenAndServe()
	}()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// runTail polls /v1/alerts, printing edges with sequence numbers not
// seen before. Transient fetch errors are logged and retried on the
// next tick; in -once mode they are fatal.
func runTail(ctx context.Context, base string, interval time.Duration, once bool, s *sink, quiet bool) error {
	target, err := alertsURL(base)
	if err != nil {
		return err
	}
	client := &http.Client{Timeout: 10 * time.Second}
	var lastSeq uint64
	for {
		ar, err := fetchAlerts(ctx, client, target)
		switch {
		case err != nil && once:
			return err
		case err != nil:
			fmt.Fprintln(os.Stderr, "dagmon: poll:", err)
		default:
			for _, a := range ar.History {
				if a.Seq <= lastSeq {
					continue
				}
				lastSeq = a.Seq
				if err := s.emit(a, quiet); err != nil {
					return err
				}
			}
		}
		if once {
			return nil
		}
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(interval):
		}
	}
}

// alertsURL appends the /v1/alerts path when the operator passed a bare
// base URL.
func alertsURL(base string) (string, error) {
	u, err := url.Parse(base)
	if err != nil {
		return "", fmt.Errorf("dagmon: bad -tail URL: %w", err)
	}
	if u.Scheme == "" || u.Host == "" {
		return "", fmt.Errorf("dagmon: -tail needs an absolute URL, got %q", base)
	}
	if u.Path == "" || u.Path == "/" {
		u.Path = "/v1/alerts"
	}
	return u.String(), nil
}

func fetchAlerts(ctx context.Context, client *http.Client, target string) (*auditd.AlertsResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, target, nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", resp.Status, body)
	}
	var ar auditd.AlertsResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		return nil, err
	}
	return &ar, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dagmon:", err)
	os.Exit(1)
}
