// Command dagmon is the alert-pipeline terminal: it either receives
// webhook deliveries from a dagauditd started with -alert-webhook, or
// tails a dagauditd /v1/alerts endpoint by polling. Every alert edge is
// written as one NDJSON line (append-only, crash-tolerant), so CI jobs
// and shell pipelines can gate on `grep` over the output file.
//
// Usage:
//
//	dagmon -listen 127.0.0.1:9801 -out alerts.ndjson   # webhook receiver
//	dagmon -tail http://127.0.0.1:9470                 # poll /v1/alerts
//	dagmon -tail http://127.0.0.1:9470 -once           # one poll, then exit
//	dagmon -telem-dir fleettelem                       # tail fleet collector alerts
//	dagmon -telem-dir fleettelem -min-severity critical
//
// In tail mode dagmon remembers the highest alert sequence number seen
// and only prints new edges, so restarting mid-stream never duplicates
// output lines for the same daemon instance. With -once it prints the
// full retained history exactly once — the CI-friendly snapshot mode.
//
// With -telem-dir dagmon polls a fleet telemetry directory instead of a
// daemon: each tick re-collects the streams (internal/telem), evaluates
// the deterministic fleet rules plus the ops-plane straggler /
// worker-stall / requeue-rate rules, and prints new edges. Fleet alert
// lines carry a shard or worker column extracted from the series name.
// -min-severity (info|warning|critical) drops weaker edges in every
// mode.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"dagguise/internal/auditd"
	"dagguise/internal/obs"
	"dagguise/internal/telem"
)

func main() {
	listen := flag.String("listen", "", "run a webhook receiver on this address")
	tail := flag.String("tail", "", "poll this dagauditd base URL's /v1/alerts endpoint")
	telemDir := flag.String("telem-dir", "", "poll this fleet telemetry directory's collector alerts")
	interval := flag.Duration("interval", 2*time.Second, "poll cadence in tail mode")
	once := flag.Bool("once", false, "tail mode: poll once, print the retained history, exit")
	out := flag.String("out", "", "append NDJSON alert lines to this file instead of stdout")
	quiet := flag.Bool("quiet", false, "suppress the human-readable stderr line per alert")
	minSeverity := flag.String("min-severity", "", "drop alerts below this severity (info, warning, critical; empty = keep all)")
	flag.Parse()

	modes := 0
	for _, m := range []string{*listen, *tail, *telemDir} {
		if m != "" {
			modes++
		}
	}
	if modes != 1 {
		fmt.Fprintln(os.Stderr, "dagmon: exactly one of -listen, -tail or -telem-dir is required")
		os.Exit(2)
	}
	switch *minSeverity {
	case "", obs.SeverityInfo, obs.SeverityWarning, obs.SeverityCritical:
	default:
		fmt.Fprintf(os.Stderr, "dagmon: unknown -min-severity %q (want info, warning or critical)\n", *minSeverity)
		os.Exit(2)
	}

	sink, closeSink, err := openSink(*out, *minSeverity)
	if err != nil {
		fatal(err)
	}
	defer closeSink()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	switch {
	case *listen != "":
		if err := runListener(ctx, *listen, sink, *quiet); err != nil {
			fatal(err)
		}
	case *telemDir != "":
		if err := runTelem(ctx, *telemDir, *interval, *once, sink, *quiet); err != nil {
			fatal(err)
		}
	default:
		if err := runTail(ctx, *tail, *interval, *once, sink, *quiet); err != nil {
			fatal(err)
		}
	}
}

// alertLine is the NDJSON output schema: the alert edge plus the shard
// or worker the fleet series names, so `grep '"shard":"..."'` works on
// fleet alert files.
type alertLine struct {
	obs.Alert
	Shard  string `json:"shard,omitempty"`
	Worker string `json:"worker,omitempty"`
}

// annotate extracts the shard/worker column from fleet series names:
// straggler/<shard>, worker_stall/<worker>, leak/<scheme>/<shard>.
// Non-fleet series pass through unannotated.
func annotate(a obs.Alert) alertLine {
	line := alertLine{Alert: a}
	switch {
	case strings.HasPrefix(a.Series, "straggler/"):
		line.Shard = strings.TrimPrefix(a.Series, "straggler/")
	case strings.HasPrefix(a.Series, "worker_stall/"):
		line.Worker = strings.TrimPrefix(a.Series, "worker_stall/")
	case strings.HasPrefix(a.Series, "leak/"):
		if _, shard, ok := strings.Cut(strings.TrimPrefix(a.Series, "leak/"), "/"); ok {
			line.Shard = shard
		}
	}
	return line
}

// sink serializes NDJSON alert lines to one writer, dropping edges
// below the minimum severity.
type sink struct {
	mu     sync.Mutex
	w      io.Writer
	minSev string
}

func openSink(path, minSeverity string) (*sink, func(), error) {
	if path == "" {
		return &sink{w: os.Stdout, minSev: minSeverity}, func() {}, nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	return &sink{w: f, minSev: minSeverity}, func() { f.Close() }, nil
}

// emit writes one alert as an NDJSON line and, unless quiet, a
// human-readable summary to stderr. Edges below the sink's minimum
// severity are dropped silently (an alert without a severity counts as
// weakest).
func (s *sink) emit(a obs.Alert, quiet bool) error {
	if s.minSev != "" && obs.SeverityRank(a.Severity) < obs.SeverityRank(s.minSev) {
		return nil
	}
	al := annotate(a)
	line, err := json.Marshal(al)
	if err != nil {
		return err
	}
	s.mu.Lock()
	_, err = s.w.Write(append(line, '\n'))
	s.mu.Unlock()
	if err != nil {
		return err
	}
	if !quiet {
		where := ""
		if al.Shard != "" {
			where = " shard=" + al.Shard
		}
		if al.Worker != "" {
			where += " worker=" + al.Worker
		}
		fmt.Fprintf(os.Stderr, "dagmon: [%s] %s %s value=%g (%s %g) seq=%d t=%d%s\n",
			a.State, a.Rule, a.Series, a.Value, a.Op, a.Threshold, a.Seq, a.T, where)
	}
	return nil
}

// runListener serves the webhook endpoint dagauditd -alert-webhook posts
// to, acking each alert after it is durably written.
func runListener(ctx context.Context, addr string, s *sink, quiet bool) error {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /", func(w http.ResponseWriter, r *http.Request) {
		var a obs.Alert
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&a); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := s.emit(a, quiet); err != nil {
			// Let the notifier's retry loop redeliver rather than drop.
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	srv := &http.Server{Addr: addr, Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "dagmon: webhook receiver on http://%s\n", addr)
		errc <- srv.ListenAndServe()
	}()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// runTail polls /v1/alerts, printing edges with sequence numbers not
// seen before. Transient fetch errors are logged and retried on the
// next tick; in -once mode they are fatal.
func runTail(ctx context.Context, base string, interval time.Duration, once bool, s *sink, quiet bool) error {
	target, err := alertsURL(base)
	if err != nil {
		return err
	}
	client := &http.Client{Timeout: 10 * time.Second}
	var lastSeq uint64
	for {
		ar, err := fetchAlerts(ctx, client, target)
		switch {
		case err != nil && once:
			return err
		case err != nil:
			fmt.Fprintln(os.Stderr, "dagmon: poll:", err)
		default:
			for _, a := range ar.History {
				if a.Seq <= lastSeq {
					continue
				}
				lastSeq = a.Seq
				if err := s.emit(a, quiet); err != nil {
					return err
				}
			}
		}
		if once {
			return nil
		}
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(interval):
		}
	}
}

// runTelem polls a fleet telemetry directory: each tick re-collects the
// streams and evaluates the deterministic fleet rules plus the
// ops-plane rules, printing edges not seen on a previous tick. The
// deterministic engine is rebuilt per tick, so its sequence numbers are
// stable and dedup by (rule, series, state) is exact; ops edges are
// deduplicated the same way (a fresh engine only ever reports "firing"
// edges).
func runTelem(ctx context.Context, dir string, interval time.Duration, once bool, s *sink, quiet bool) error {
	seen := make(map[string]bool)
	for {
		col, err := telem.Collect(dir)
		switch {
		case err != nil && once:
			return err
		case err != nil:
			fmt.Fprintln(os.Stderr, "dagmon: poll:", err)
		default:
			rep, err := col.Report(nil)
			if err != nil {
				if once {
					return err
				}
				fmt.Fprintln(os.Stderr, "dagmon: poll:", err)
				break
			}
			opsAlerts, _ := col.EvalOps(time.Now().UnixMilli(), nil)
			for _, a := range append(rep.Alerts, opsAlerts...) {
				key := a.Rule + "|" + a.Series + "|" + a.State
				if seen[key] {
					continue
				}
				seen[key] = true
				if err := s.emit(a, quiet); err != nil {
					return err
				}
			}
		}
		if once {
			return nil
		}
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(interval):
		}
	}
}

// alertsURL appends the /v1/alerts path when the operator passed a bare
// base URL.
func alertsURL(base string) (string, error) {
	u, err := url.Parse(base)
	if err != nil {
		return "", fmt.Errorf("dagmon: bad -tail URL: %w", err)
	}
	if u.Scheme == "" || u.Host == "" {
		return "", fmt.Errorf("dagmon: -tail needs an absolute URL, got %q", base)
	}
	if u.Path == "" || u.Path == "/" {
		u.Path = "/v1/alerts"
	}
	return u.String(), nil
}

func fetchAlerts(ctx context.Context, client *http.Client, target string) (*auditd.AlertsResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, target, nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", resp.Status, body)
	}
	var ar auditd.AlertsResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		return nil, err
	}
	return &ar, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dagmon:", err)
	os.Exit(1)
}
