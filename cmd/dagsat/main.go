// Command dagsat exposes the built-in CDCL SAT solver as a standalone
// DIMACS solver, so the verification back-end can be exercised (and
// cross-checked against other solvers) on standard .cnf files.
//
//	dagsat problem.cnf      # solve a file
//	dagsat -                # solve stdin
//	dagsat -model file.cnf  # print the satisfying assignment
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dagguise/internal/sat"
)

func main() {
	model := flag.Bool("model", false, "print the model on SAT")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: dagsat [-model] <file.cnf | ->")
		os.Exit(2)
	}
	var r io.Reader
	if flag.Arg(0) == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	s := sat.New()
	clauses, err := s.ParseDIMACS(r)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("c parsed %d clauses over %d variables\n", clauses, s.NumVars())
	if s.Solve() == sat.Sat {
		fmt.Println("s SATISFIABLE")
		if *model {
			fmt.Print("v ")
			for v := 1; v <= s.NumVars(); v++ {
				if s.Value(v) {
					fmt.Printf("%d ", v)
				} else {
					fmt.Printf("-%d ", v)
				}
			}
			fmt.Println("0")
		}
		return
	}
	fmt.Println("s UNSATISFIABLE")
	os.Exit(20) // conventional UNSAT exit code; SAT exits 0
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dagsat:", err)
	os.Exit(1)
}
