package main

import (
	"strings"
	"testing"

	"dagguise/internal/telem"
)

// buildFrame writes a synthetic campaign into a telemetry directory with
// injected clocks and renders one frame at a fixed wall time.
func buildFrame(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()

	clock := func(base, step int64) func() int64 {
		v := base - step
		return func() int64 {
			v += step
			return v
		}
	}
	open := func(worker string, c func() int64) *telem.Emitter {
		e, err := telem.OpenEmitter(dir, worker, "0123456789abcdeffull")
		if err != nil {
			t.Fatal(err)
		}
		e.SetClock(c)
		return e
	}

	// Campaign stream: 6 shards over 2 workers.
	fleet := open("fleet", clock(1000, 1))
	fleet.Campaign(6, 2, 1000)
	fleet.Close()

	// Worker 0: one shard done in 1s, one running at half progress,
	// heartbeating recently.
	w0 := open("0", clock(1000, 1000))
	w0.Shard("s0", telem.EventClaim, "", 1000) // wall 1000
	w0.Shard("s0", telem.EventDone, "", 1000)  // wall 2000
	w0.Point("leak/insecure/s0", 1000, 1)
	w0.Shard("s1", telem.EventClaim, "", 1000) // wall 3000
	w0.SpanBegin("s1", "chunk", 0)
	w0.SpanEnd("s1", "chunk", 0, 500)
	w0.Heartbeat("s1", 500) // wall 4000: progress 5/10
	w0.Close()

	// Worker 1: one failed shard, one claimed with unknown progress,
	// silent since wall 7000 -> stale at nowMs 60000.
	w1 := open("1", clock(5000, 1000))
	w1.Shard("s2", telem.EventClaim, "", 1000)   // wall 5000
	w1.Shard("s2", telem.EventFailed, "boom", 0) // wall 6000
	w1.Shard("s3", telem.EventClaim, "", 0)      // wall 7000
	w1.Point("leak/dagguise/s2", 1000, 0)
	w1.Close()

	c, err := telem.Collect(dir)
	if err != nil {
		t.Fatal(err)
	}
	return render(c, 60_000)
}

func TestRenderFrame(t *testing.T) {
	frame := buildFrame(t)

	for _, want := range []string{
		// Header: truncated fingerprint, worker count excludes nothing
		// (fleet+auditd streams still count as streams), shard tallies.
		"dagtop · sweep 0123456789ab · 3 workers",
		"pending 2", "running 2", "done 1", "failed 1",
		"eta ",
		// Heatmap rows: worker 0 shows done '#' then running-at-half '5';
		// worker 1 shows failed 'X' then unknown-progress '?'.
		"\n  0        #5",
		"\n  1        X?",
		"(unclaimed)",
		// Worker 1 went silent 53s ago while holding s3.
		"(last heartbeat 53s ago)",
		// Deterministic fleet rule fires on the insecure leak rollup.
		"fleet-leak-budget-burn", "leak_rate/insecure", "critical",
		// Ops rules at nowMs 60000: both running shards are stragglers
		// (elapsed 57s/53s vs 1s median) and worker 1 stalled.
		"straggler", "straggler/s1",
		"worker-stall", "worker_stall/1",
		"\nstragglers (elapsed vs median done shard)\n",
	} {
		if !strings.Contains(frame, want) {
			t.Fatalf("frame missing %q:\n%s", want, frame)
		}
	}

	// s1 claimed at wall 3000 -> elapsed 57s, s3 at 7000 -> 53s: s1 ranks
	// first.
	iS1 := strings.Index(frame, "s1                           worker 0")
	iS3 := strings.Index(frame, "s3                           worker 1")
	if iS1 < 0 || iS3 < 0 || iS1 > iS3 {
		t.Fatalf("straggler ranking order wrong (s1@%d, s3@%d):\n%s", iS1, iS3, frame)
	}

	// The clean scheme must not fire.
	if strings.Contains(frame, "leak_rate/dagguise") {
		t.Fatalf("clean scheme alerted:\n%s", frame)
	}

	// Rendering is a pure function: same collection, same bytes.
	if again := buildFrame(t); frame != again {
		t.Fatalf("render is not deterministic:\n--- first ---\n%s\n--- second ---\n%s", frame, again)
	}
}

// TestRenderLeaseSection pins the multi-process view: per-process
// campaign streams (fleet-<proc>) are skipped in the heatmap, and shards
// with lease history get a "leases" section showing the current owner,
// fencing epoch, steal count and zombie-fence count.
func TestRenderLeaseSection(t *testing.T) {
	dir := t.TempDir()
	clock := func(base, step int64) func() int64 {
		v := base - step
		return func() int64 {
			v += step
			return v
		}
	}
	open := func(worker string, c func() int64) *telem.Emitter {
		e, err := telem.OpenEmitter(dir, worker, "0123456789abcdeffull")
		if err != nil {
			t.Fatal(err)
		}
		e.SetClock(c)
		return e
	}

	// Two per-process campaign streams, as dagchaos -join writes them.
	for _, proc := range []string{"fleet-p1", "fleet-p2"} {
		f := open(proc, clock(1000, 1))
		f.Campaign(2, 2, 1000)
		f.Close()
	}

	// Process p1's worker claims s0, then stalls past its lease; its
	// zombie commit is later refused.
	w0 := open("p1-w0", clock(1000, 1000))
	w0.Lease("s0", telem.EventClaim, "p1-w0", 1, 1000)
	w0.Lease("s0", telem.EventFenced, "p1-w0", 1, 0)
	w0.Close()

	// Process p2's worker steals s0 at epoch 2 and finishes it, and runs
	// s1 uneventfully to completion (no lease history -> no leases row).
	w1 := open("p2-w0", clock(5000, 1000))
	w1.Lease("s0", telem.EventSteal, "p2-w0", 2, 1000)
	w1.Shard("s0", telem.EventDone, "", 1000)
	w1.Shard("s1", telem.EventClaim, "", 1000)
	w1.Shard("s1", telem.EventDone, "", 1000)
	w1.Close()

	c, err := telem.Collect(dir)
	if err != nil {
		t.Fatal(err)
	}
	frame := render(c, 60_000)

	for _, want := range []string{
		"\nleases\n",
		"s0", "p2-w0", "epoch 2",
		"stolen x1", "zombie-fenced x1",
	} {
		if !strings.Contains(frame, want) {
			t.Fatalf("frame missing %q:\n%s", want, frame)
		}
	}
	// Per-process campaign streams must not get heatmap rows.
	for _, absent := range []string{"\n  fleet-p1", "\n  fleet-p2"} {
		if strings.Contains(frame, absent) {
			t.Fatalf("campaign stream leaked into the heatmap (%q):\n%s", absent, frame)
		}
	}
	// s1 finished without steals or fences: it must not be listed.
	leases := frame[strings.Index(frame, "\nleases\n"):]
	if at := strings.Index(leases[1:], "\n\n"); at >= 0 {
		leases = leases[:at+1]
	}
	if strings.Contains(leases, "s1") {
		t.Fatalf("uneventful shard listed in the leases section:\n%s", frame)
	}
}

func TestCell(t *testing.T) {
	cases := []struct {
		st   telem.ShardStatus
		want byte
	}{
		{telem.ShardStatus{State: "done"}, '#'},
		{telem.ShardStatus{State: "failed"}, 'X'},
		{telem.ShardStatus{State: "claim"}, '?'},
		{telem.ShardStatus{State: "claim", Target: 1000, Cycle: 0}, '0'},
		{telem.ShardStatus{State: "claim", Target: 1000, Cycle: 990}, '9'},
		{telem.ShardStatus{State: "claim", Target: 1000, Cycle: 2000}, '9'},
		{telem.ShardStatus{State: ""}, '.'},
	}
	for _, tc := range cases {
		if got := cell(tc.st); got != tc.want {
			t.Errorf("cell(%+v) = %c, want %c", tc.st, got, tc.want)
		}
	}
}
