// Command dagtop is the live terminal console over a fleet campaign's
// telemetry directory (internal/telem): it re-collects the per-worker
// streams on every refresh and draws a per-worker shard heatmap,
// pending/running/done/failed counts, an ETA from shard-duration
// history, the firing alerts (deterministic fleet rules plus the
// ops-plane straggler/worker-stall/requeue-rate rules) and the
// straggler ranking.
//
// Usage:
//
//	dagtop -dir fleettelem               # live view, refresh every 2s
//	dagtop -dir fleettelem -refresh 500ms
//	dagtop -dir fleettelem -once         # one frame, no ANSI clear (CI logs)
//
// The heatmap shows one row per worker; each cell is one shard that
// worker last touched: a digit 0-9 is a running shard's progress in
// tenths, '#' done, 'X' failed, '?' claimed with unknown progress.
// Shards no worker has claimed yet are counted on the "(unclaimed)"
// row.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"dagguise/internal/obs"
	"dagguise/internal/telem"
)

func main() {
	dir := flag.String("dir", "", "fleet telemetry directory (the -telem-dir of a dagchaos/dagsim fleet run)")
	refresh := flag.Duration("refresh", 2*time.Second, "redraw interval")
	once := flag.Bool("once", false, "render one frame and exit (no ANSI clear)")
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "dagtop: -dir is required")
		os.Exit(2)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	for {
		frame, err := snapshot(*dir, time.Now().UnixMilli())
		switch {
		case err == nil:
			if !*once {
				fmt.Print("\x1b[2J\x1b[H") // clear + home
			}
			fmt.Print(frame)
		case errors.Is(err, fs.ErrNotExist) || strings.Contains(err.Error(), "no telem-worker-"):
			fmt.Fprintf(os.Stderr, "dagtop: waiting for streams in %s (%v)\n", *dir, err)
		default:
			fmt.Fprintln(os.Stderr, "dagtop:", err)
			os.Exit(1)
		}
		if *once {
			return
		}
		select {
		case <-sig:
			return
		case <-time.After(*refresh):
		}
	}
}

// snapshot collects the directory and renders one frame.
func snapshot(dir string, nowMs int64) (string, error) {
	c, err := telem.Collect(dir)
	if err != nil {
		return "", err
	}
	return render(c, nowMs), nil
}

// render draws one console frame from a collection. Pure (the wall
// clock is a parameter), so the layout is golden-testable.
func render(c *telem.Collection, nowMs int64) string {
	var b strings.Builder
	pending, running, done, failed := c.Counts()

	fp := c.Fingerprint
	if len(fp) > 12 {
		fp = fp[:12]
	}
	fmt.Fprintf(&b, "dagtop · sweep %s · %d workers\n", fp, len(c.Workers))
	fmt.Fprintf(&b, "shards  pending %-4d running %-4d done %-4d failed %-4d", pending, running, done, failed)
	if ms, ok := c.ETA(); ok {
		fmt.Fprintf(&b, "  eta %s", (time.Duration(ms) * time.Millisecond).Round(time.Second))
	}
	b.WriteString("\n\n")

	// Per-worker heatmap.
	byWorker := make(map[string][]telem.ShardStatus)
	unclaimed := 0
	for _, st := range c.Shards {
		if st.Worker == "" {
			unclaimed++
			continue
		}
		byWorker[st.Worker] = append(byWorker[st.Worker], st)
	}
	unclaimed += pending - countPendingKnown(c)
	b.WriteString("workers\n")
	for _, w := range c.Workers {
		if w.Name == "fleet" || w.Name == "auditd" || strings.HasPrefix(w.Name, "fleet-") {
			continue // campaign-level streams have no shard lane
		}
		cells := byWorker[w.Name]
		sort.Slice(cells, func(i, j int) bool { return cells[i].Name < cells[j].Name })
		var row strings.Builder
		for _, st := range cells {
			row.WriteByte(cell(st))
		}
		stale := ""
		if w.LastWall > 0 && nowMs > w.LastWall+10_000 && len(w.Running) > 0 {
			stale = fmt.Sprintf("  (last heartbeat %s ago)", (time.Duration(nowMs-w.LastWall) * time.Millisecond).Round(time.Second))
		}
		fmt.Fprintf(&b, "  %-8s %-32s %d shard(s)%s\n", w.Name, row.String(), len(cells), stale)
	}
	if unclaimed > 0 {
		fmt.Fprintf(&b, "  %-8s %-32s %d shard(s)\n", "(unclaimed)", strings.Repeat(".", min(unclaimed, 32)), unclaimed)
	}

	// Lease ownership: running shards with their owner identity and
	// fencing epoch, plus any shard with steal or zombie-fence history.
	// Only multi-process fleets (dagchaos -join) populate these.
	var leases []telem.ShardStatus
	for _, st := range c.Shards {
		if (st.Owner != "" && st.State == "claim") || st.Steals > 0 || st.Fenced > 0 {
			leases = append(leases, st)
		}
	}
	if len(leases) > 0 {
		sort.Slice(leases, func(i, j int) bool { return leases[i].Name < leases[j].Name })
		b.WriteString("\nleases\n")
		for _, st := range leases {
			owner := st.Owner
			if owner == "" {
				owner = "-"
			}
			notes := ""
			if st.Steals > 0 {
				notes += fmt.Sprintf("  stolen x%d", st.Steals)
			}
			if st.Fenced > 0 {
				notes += fmt.Sprintf("  zombie-fenced x%d", st.Fenced)
			}
			fmt.Fprintf(&b, "  %-28s %-16s epoch %-4d%s\n", st.Name, owner, st.Epoch, notes)
		}
	}

	// Alerts: deterministic fleet rules over the merged series, plus the
	// ops-plane rules at the current wall time.
	opsAlerts, stragglers := c.EvalOps(nowMs, nil)
	detAlerts := detFiring(c)
	if len(detAlerts)+len(opsAlerts) > 0 {
		b.WriteString("\nalerts\n")
		for _, a := range detAlerts {
			fmt.Fprintf(&b, "  %-8s %-22s %-28s %s (%.2f %s %.2f)\n", a.Severity, a.Rule, a.Series, a.State, a.Value, a.Op, a.Threshold)
		}
		for _, a := range opsAlerts {
			fmt.Fprintf(&b, "  %-8s %-22s %-28s %s (%.2f %s %.2f)\n", a.Severity, a.Rule, a.Series, a.State, a.Value, a.Op, a.Threshold)
		}
	}

	if len(stragglers) > 0 {
		b.WriteString("\nstragglers (elapsed vs median done shard)\n")
		for i, s := range stragglers {
			if i == 5 {
				break
			}
			ratio := "n/a"
			if s.Ratio > 0 {
				ratio = fmt.Sprintf("%.1fx", s.Ratio)
			}
			fmt.Fprintf(&b, "  %-28s worker %-8s %8s  %s\n", s.Shard, s.Worker,
				(time.Duration(s.ElapsedMs) * time.Millisecond).Round(time.Second), ratio)
		}
	}
	return b.String()
}

// cell maps one shard status to its heatmap glyph.
func cell(st telem.ShardStatus) byte {
	switch st.State {
	case "done":
		return '#'
	case "failed":
		return 'X'
	case "claim":
		if st.Target > 0 {
			tenth := st.Cycle * 10 / st.Target
			if tenth > 9 {
				tenth = 9
			}
			return byte('0' + tenth)
		}
		return '?'
	default:
		return '.'
	}
}

// countPendingKnown counts shards present in the collection that are
// still pending (never claimed), to split known from never-seen pending
// in the heatmap.
func countPendingKnown(c *telem.Collection) int {
	n := 0
	for _, st := range c.Shards {
		if st.State != "done" && st.State != "failed" && st.State != "claim" {
			n++
		}
	}
	return n
}

// detFiring evaluates the deterministic fleet rules against the merged
// series and returns the resulting edges.
func detFiring(c *telem.Collection) []obs.Alert {
	var maxT uint64
	for _, name := range c.DB.Names() {
		if p, ok := c.DB.Last(name); ok && p.T > maxT {
			maxT = p.T
		}
	}
	eng := obs.NewEngine(c.DB, telem.DetRules())
	eng.Eval(maxT)
	return eng.History()
}
