// Command dagauditd is the always-on leakage-audit daemon: it accepts
// timing observations over HTTP (newline-delimited JSON batches, one
// observation per line), audits each tenant's stream through the
// calibrated windowed detectors of internal/audit, and serves per-tenant
// leakage verdicts, Prometheus metrics and health endpoints.
//
// The service is built to stay correct while everything around it
// misbehaves: bounded ingest queues shed load with 429 + Retry-After,
// flooding tenants degrade to deterministic sampling instead of taking
// the process down, a panicking tenant pipeline quarantines that tenant
// only, and all tenant state checkpoints through internal/ckpt so a
// SIGKILL loses at most the un-checkpointed tail — which the sequence-
// numbered ingest protocol lets clients simply replay. A resumed daemon
// fed the same stream produces byte-identical verdicts to one that never
// died; the CI soak job enforces exactly that with a mid-stream kill.
//
// With -alert-webhook the daemon also runs the SLO alerting pipeline:
// every audited window, shard queue sample and retry indicator feeds the
// in-process time-series store, the rule engine (the stock catalog, or a
// -alert-rules JSON file) evaluates after each batch, and deduplicated
// alert edges are POSTed to the webhook (e.g. a `dagmon -listen`
// endpoint) with bounded retries. Alert history, the firing set and the
// active rules are readable at /v1/alerts, and both ride the service
// checkpoint so a restart neither loses nor re-fires past edges.
//
// Usage:
//
//	dagauditd -addr 127.0.0.1:9470
//	dagauditd -checkpoint state/auditd.ckpt -checkpoint-every 500
//	dagauditd -window 50 -perms 100 -boot 100 -budget 0.05
//	dagauditd -alert-webhook http://127.0.0.1:9801/ -alert-rules rules.json
//
// Endpoints:
//
//	POST /v1/ingest                  observation batch (NDJSON)
//	GET  /v1/verdicts                all tenant verdicts
//	GET  /v1/verdicts/{tenant}       one tenant
//	GET  /v1/alerts                  alert history, firing set, rule catalog
//	POST /v1/tenants/{tenant}/flush  audit the final partial window
//	POST /v1/checkpoint              force a durable checkpoint
//	GET  /metrics, /healthz, /readyz
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dagguise/internal/audit"
	"dagguise/internal/auditd"
	"dagguise/internal/obs"
	"dagguise/internal/telem"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9470", "listen address")

	window := flag.Int("window", 50, "audit window size per secret class")
	stride := flag.Int("stride", 0, "window stride (0 = tumbling)")
	budget := flag.Float64("budget", 0.05, "leakage budget in bits")
	alpha := flag.Float64("alpha", 0.01, "per-window false-positive rate")
	perms := flag.Int("perms", 100, "permutations per window calibration")
	boot := flag.Int("boot", 100, "bootstrap resamples per window")
	confidence := flag.Float64("confidence", 0.95, "MI confidence-interval level")
	binWidth := flag.Uint64("bin-width", 8, "MI histogram bin width")
	seed := flag.Int64("seed", 1, "base calibration seed (each tenant derives its own)")

	shards := flag.Int("shards", 4, "audit worker shards")
	queueDepth := flag.Int("queue-depth", 64, "pending batches per shard before load-shedding")
	maxTenants := flag.Int("max-tenants", 64, "tenant registry bound")
	degradeAfter := flag.Int("degrade-after", 0, "per-tenant observations before degrading to sampling (0 = never)")
	sampleKeep := flag.Int("sample-keep", 4, "degraded mode keeps 1 in this many observations")
	recent := flag.Int("recent", 8, "recent window reports retained per tenant verdict")

	ckptPath := flag.String("checkpoint", "", "checkpoint file path (empty = no durability)")
	ckptEvery := flag.Int("checkpoint-every", 0, "auto-checkpoint cadence in accepted observations (0 = manual/shutdown only)")

	readTimeout := flag.Duration("read-timeout", 10*time.Second, "per-request body read timeout (bounds slow/stalled clients)")
	maxBatch := flag.Int64("max-batch-bytes", 1<<20, "ingest request body limit")

	alertWebhook := flag.String("alert-webhook", "", "POST deduplicated alert edges as JSON to this URL (e.g. a dagmon -listen endpoint)")
	alertRules := flag.String("alert-rules", "", "JSON file with the SLO rule list (default: the stock catalog when alerting is on)")
	telemDir := flag.String("telem-dir", "", "mirror the SLO feed series onto a fleet telemetry stream (telem-worker-auditd.ndjson) in this directory")
	flag.Parse()

	cfg := auditd.Config{
		Audit: audit.Config{
			Window: *window, Stride: *stride, BinWidth: *binWidth,
			Budget: *budget, Alpha: *alpha,
			Permutations: *perms, Bootstrap: *boot,
			Confidence: *confidence, Seed: *seed,
		},
		Shards: *shards, QueueDepth: *queueDepth, MaxTenants: *maxTenants,
		MaxBatchBytes: *maxBatch,
		DegradeAfter:  *degradeAfter, SampleKeep: *sampleKeep,
		RecentWindows:  *recent,
		CheckpointPath: *ckptPath, CheckpointEvery: *ckptEvery,
	}
	var notifier *obs.Notifier
	if *alertWebhook != "" || *alertRules != "" {
		cfg.Rules = obs.DefaultRules()
		if *alertRules != "" {
			data, err := os.ReadFile(*alertRules)
			if err != nil {
				fatal(err)
			}
			if cfg.Rules, err = obs.ParseRules(data); err != nil {
				fatal(err)
			}
		}
		if *alertWebhook != "" {
			notifier = obs.NewNotifier(*alertWebhook, obs.NotifierConfig{
				Logf: func(format string, args ...any) {
					fmt.Fprintf(os.Stderr, "dagauditd: alert webhook: "+format+"\n", args...)
				},
			})
			cfg.Notifier = notifier
		}
		fmt.Fprintf(os.Stderr, "dagauditd: alerting with %d rule(s)\n", len(cfg.Rules))
	}
	if *telemDir != "" {
		em, err := telem.OpenEmitter(*telemDir, "auditd", "")
		if err != nil {
			fatal(err)
		}
		defer em.Close()
		cfg.Telem = em
		fmt.Fprintf(os.Stderr, "dagauditd: telemetry stream in %s\n", *telemDir)
	}
	svc, err := auditd.New(cfg)
	if err != nil {
		fatal(err)
	}
	if *ckptPath != "" {
		if n := len(svc.Verdicts()); n > 0 {
			fmt.Fprintf(os.Stderr, "dagauditd: restored %d tenant(s) from %s\n", n, *ckptPath)
		}
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       *readTimeout,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "dagauditd: serving on http://%s\n", *addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}
	// Graceful drain: stop accepting connections, let in-flight requests
	// finish, then drain the shard queues and write the final checkpoint.
	fmt.Fprintln(os.Stderr, "dagauditd: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "dagauditd: shutdown:", err)
	}
	if err := svc.Close(shutCtx); err != nil {
		fatal(err)
	}
	notifier.Close() // drain queued alert deliveries (nil-safe)
	if *ckptPath != "" {
		fmt.Fprintf(os.Stderr, "dagauditd: final checkpoint at %s\n", *ckptPath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dagauditd:", err)
	os.Exit(1)
}
