// Command dagprof runs the offline profiling phase (§4.3, Figure 7): it
// sweeps the rDAG template search space over the DocDist victim running
// alone, prints the normalized-IPC and allocated-bandwidth series per
// parallel-sequence count, and reports the selected knee-point defense
// rDAG.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"dagguise/internal/eval"
)

func main() {
	warmup := flag.Uint64("warmup", 100_000, "warmup cycles per candidate")
	window := flag.Uint64("window", 1_600_000, "measurement cycles per candidate")
	flag.Parse()

	res, err := eval.Figure7(eval.Options{Warmup: *warmup, Window: *window})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dagprof:", err)
		os.Exit(1)
	}

	fmt.Printf("Figure 7: defense rDAG selection for DocDist (baseline IPC %.3f)\n\n", res.BaselineIPC)
	series := res.SeriesBySequences()
	var seqs []int
	for s := range series {
		seqs = append(seqs, s)
	}
	sort.Ints(seqs)
	fmt.Printf("%-10s %-12s %-16s %-20s\n", "sequences", "weight(cpu)", "normalized IPC", "allocated BW (GB/s)")
	for _, s := range seqs {
		for _, p := range series[s] {
			fmt.Printf("%-10d %-12d %-16.3f %-20.2f\n",
				p.Template.Sequences, p.Template.Weight, p.NormalizedIPC, p.AllocatedGBps)
		}
	}
	fmt.Printf("\nselected defense rDAG: %v\n", res.Selected)
}
