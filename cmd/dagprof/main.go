// Command dagprof runs the offline profiling phase (§4.3, Figure 7): it
// sweeps the rDAG template search space over the DocDist victim running
// alone, prints the normalized-IPC and allocated-bandwidth series per
// parallel-sequence count, and reports the selected knee-point defense
// rDAG.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"dagguise/internal/eval"
	"dagguise/internal/obs"
	"dagguise/internal/sim"
)

func main() {
	warmup := flag.Uint64("warmup", 100_000, "warmup cycles per candidate")
	window := flag.Uint64("window", 1_600_000, "measurement cycles per candidate")
	metrics := flag.Bool("metrics", false, "print the per-domain observability metrics table after the sweep")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON (Perfetto-loadable) to this path")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	interval := flag.Duration("metrics-interval", 0, "print periodic metric delta snapshots to stderr (e.g. 10s)")
	flag.Parse()

	if *pprofAddr != "" {
		addr, err := obs.ServePprof(*pprofAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dagprof:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "dagprof: pprof at http://%s/debug/pprof/\n", addr)
	}

	opts := eval.Options{Warmup: *warmup, Window: *window}
	var mx *obs.Registry
	var tr *obs.Tracer
	var simCycles uint64
	if *metrics || *interval > 0 {
		mx = obs.NewRegistry(2) // profiling runs the victim alone: domains 0 and 1
	}
	if *traceOut != "" {
		tr = obs.NewTracer(0)
	}
	if mx != nil || tr != nil {
		opts.Attach = func(sys *sim.System) {
			simCycles += *warmup + *window
			sys.Observe(mx, tr)
		}
	}
	if *interval > 0 {
		stop := obs.StartIntervalDump(os.Stderr, mx, *interval)
		defer stop()
	}

	res, err := eval.Figure7(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dagprof:", err)
		os.Exit(1)
	}
	if *metrics {
		defer func() {
			fmt.Println()
			fmt.Print(obs.FormatSummary(mx.Snapshot(), simCycles))
		}()
	}
	if tr != nil {
		if err := obs.WriteChromeTraceFile(*traceOut, tr); err != nil {
			fmt.Fprintln(os.Stderr, "dagprof:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "dagprof: wrote %d trace events to %s\n", tr.Len(), *traceOut)
	}

	fmt.Printf("Figure 7: defense rDAG selection for DocDist (baseline IPC %.3f)\n\n", res.BaselineIPC)
	series := res.SeriesBySequences()
	var seqs []int
	for s := range series {
		seqs = append(seqs, s)
	}
	sort.Ints(seqs)
	fmt.Printf("%-10s %-12s %-16s %-20s\n", "sequences", "weight(cpu)", "normalized IPC", "allocated BW (GB/s)")
	for _, s := range seqs {
		for _, p := range series[s] {
			fmt.Printf("%-10d %-12d %-16.3f %-20.2f\n",
				p.Template.Sequences, p.Template.Weight, p.NormalizedIPC, p.AllocatedGBps)
		}
	}
	fmt.Printf("\nselected defense rDAG: %v\n", res.Selected)
}
