// Command dagverify runs the formal security verification of §5: bounded
// model checking of the indistinguishability property from reset (base
// step), the strengthened induction step, and the public-state determinism
// side condition, all discharged with the built-in CDCL SAT solver. With
// -leaky it verifies a deliberately broken shaper instead and prints the
// counterexample trace, mirroring the artifact's "improperly-chosen K"
// demonstration.
//
// Usage:
//
//	dagverify              # prove the property at the minimal k
//	dagverify -cycle 5     # check a specific unrolling depth
//	dagverify -leaky       # show a counterexample for a broken shaper
package main

import (
	"flag"
	"fmt"
	"os"

	"dagguise/internal/verify"
)

func main() {
	k := flag.Int("cycle", 0, "unrolling depth K (0 = search for the minimal K)")
	maxK := flag.Int("max", 16, "maximum K to try")
	banks := flag.Int("banks", 2, "banks in the verified model (1 or 2)")
	sequences := flag.Int("sequences", 1, "parallel defense-rDAG chains (1 or 2)")
	weight := flag.Int("weight", 2, "defense rDAG edge weight")
	latency := flag.Int("latency", 2, "FCFS memory latency")
	leaky := flag.Bool("leaky", false, "verify a deliberately broken shaper")
	flag.Parse()

	cfg := verify.DefaultModel()
	cfg.Banks = *banks
	cfg.Sequences = *sequences
	cfg.Weight = *weight
	cfg.MemLatency = *latency
	cfg.Leaky = *leaky

	v, err := verify.NewVerifier(cfg)
	if err != nil {
		fatal(err)
	}

	if *leaky {
		depth, cex, err := v.DetectionDepth(*maxK)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("**** Base Step Finished ****\n(sat at k=%d)\n\n%s", depth, cex)
		diffAt, err := v.Replay(cex)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nreplayed on the concrete model: receiver observations first differ at cycle %d\n", diffAt)
		fmt.Println("the broken shaper leaks: the two transmitter traces above produce different receiver observations")
		return
	}

	depth := *k
	if depth == 0 {
		depth, err = v.MinimalK(*maxK)
		if err != nil {
			fatal(err)
		}
	}
	rep, err := v.Verify(depth)
	if err != nil {
		fatal(err)
	}
	fmt.Println("**** Base Step Finished ****")
	fmt.Println(unsat(rep.BaseHolds))
	fmt.Println("**** Induction Step Finished ****")
	fmt.Println(unsat(rep.InductionHolds))
	fmt.Println("**** Public-State Determinism Finished ****")
	fmt.Println(unsat(rep.DeterminismHolds))
	if rep.Holds() {
		fmt.Printf("\nsecurity property proven at K=%d: the receiver's response trace is independent of the transmitter's requests\n", depth)
		return
	}
	fmt.Printf("\nverification FAILED at K=%d\n", depth)
	if rep.Cex != nil {
		fmt.Print(rep.Cex)
	}
	os.Exit(1)
}

func unsat(ok bool) string {
	if ok {
		return "(unsat)"
	}
	return "(sat)"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dagverify:", err)
	os.Exit(1)
}
