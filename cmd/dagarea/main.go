// Command dagarea prints the Table 3 hardware cost of the DAGguise shaper:
// the rDAG computation logic gate count and the private transaction queue
// SRAM, with 45nm areas.
package main

import (
	"flag"
	"fmt"
	"os"

	"dagguise/internal/area"
)

func main() {
	domains := flag.Int("domains", 8, "protected security domains (shaper instances)")
	banks := flag.Int("banks", 8, "banks per shaper")
	weightBits := flag.Int("weight-bits", 16, "rDAG weight register width")
	entries := flag.Int("queue-entries", 8, "private queue entries per domain")
	flag.Parse()

	cfg := area.Table3Config()
	cfg.Domains = *domains
	cfg.Banks = *banks
	cfg.WeightBits = *weightBits
	cfg.QueueEntries = *entries

	res, err := area.Estimate(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dagarea:", err)
		os.Exit(1)
	}
	fmt.Printf("Table 3: DAGguise area for %d protected domains\n%s\n", cfg.Domains, res)
}
