package main

// Traffic-generator mode: with -target set, dagchaos stops torturing the
// simulator and instead tortures a running dagauditd instance. It derives
// deterministic observation streams — real attacker tap streams from the
// simulated schemes (-serve-schemes) plus synthetic leaky/clean tenants
// (-synth-tenants) — and streams them over HTTP through the auditd client,
// optionally wrapped in client-side transport chaos (-chaos): malformed
// and truncated payloads, burst duplicate storms, slow trickled uploads,
// stalled readers. Because every observation carries its sequence number,
// the generator is crash-agnostic: rerunning it against a restarted
// server replays the stream, the server dup-acks what it already has, and
// the final verdicts converge to the same bytes. -gate turns the fetched
// verdicts into an exit code, giving CI a one-line end-to-end leakage
// check through the service path.

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dagguise/internal/audit"
	"dagguise/internal/auditd"
	"dagguise/internal/ckpt"
	"dagguise/internal/config"
	"dagguise/internal/eval"
	"dagguise/internal/fault"
	"dagguise/internal/rng"
)

// trafficOpts are the -target mode flags.
type trafficOpts struct {
	target       string
	serveSchemes string
	synthTenants int
	synthPairs   int
	probes       int
	batch        int
	chaos        bool
	chaosEvents  int
	verdictsOut  string
	gate         string
	noFlush      bool
	timeout      time.Duration
}

// registerTrafficFlags declares the traffic-mode flags on the default
// flag set; main dispatches to runTraffic when -target is non-empty.
func registerTrafficFlags() *trafficOpts {
	var o trafficOpts
	flag.StringVar(&o.target, "target", "", "dagauditd base URL; switches dagchaos into audit-service traffic mode")
	flag.StringVar(&o.serveSchemes, "serve-schemes", "", "comma-separated schemes to stream real simulated tap streams for (e.g. insecure,dagguise)")
	flag.IntVar(&o.synthTenants, "synth-tenants", 0, "additional synthetic tenants (alternating leaky/clean)")
	flag.IntVar(&o.synthPairs, "synth-pairs", 150, "sample pairs per synthetic tenant")
	flag.IntVar(&o.probes, "probes", 300, "probes per scheme tap stream")
	flag.IntVar(&o.batch, "batch", 25, "observations per ingest request")
	flag.BoolVar(&o.chaos, "chaos", false, "wrap the client in transport fault injection")
	flag.IntVar(&o.chaosEvents, "chaos-events", 10, "client fault events per tenant stream (with -chaos)")
	flag.StringVar(&o.verdictsOut, "verdicts-out", "", "write the raw verdict JSON to this path")
	flag.StringVar(&o.gate, "gate", "", "expectations like insecure=leak,dagguise=clean; unmet expectations fail the run")
	flag.BoolVar(&o.noFlush, "no-flush", false, "skip flushing tenants' final partial windows")
	flag.DurationVar(&o.timeout, "traffic-timeout", 5*time.Minute, "overall traffic-mode deadline")
	return &o
}

// tenantStream is one tenant's full deterministic observation sequence.
type tenantStream struct {
	name string
	obs  []auditd.Observation
}

// interleave zips the two secret-class sample streams into the wire
// format with dense sequence numbers — the same pairing order the batch
// auditor uses, so the service reproduces its verdicts.
func interleave(tenant string, s0, s1 []audit.Sample) []auditd.Observation {
	n := len(s0)
	if len(s1) < n {
		n = len(s1)
	}
	out := make([]auditd.Observation, 0, 2*n)
	for i := 0; i < n; i++ {
		out = append(out,
			auditd.Observation{Tenant: tenant, Seq: uint64(2 * i), Secret: 0, Cycle: s0[i].Cycle, Value: s0[i].Value},
			auditd.Observation{Tenant: tenant, Seq: uint64(2*i + 1), Secret: 1, Cycle: s1[i].Cycle, Value: s1[i].Value},
		)
	}
	return out
}

// synthStream fabricates a deterministic tenant: even indices leak (the
// two classes sit ~300 cycles apart), odd ones are clean.
func synthStream(idx, pairs int, baseSeed int64) tenantStream {
	leaky := idx%2 == 0
	kind := "clean"
	if leaky {
		kind = "leaky"
	}
	name := fmt.Sprintf("synth-%s-%d", kind, idx)
	r := rng.New(rng.Derive(baseSeed, name))
	s0 := make([]audit.Sample, pairs)
	s1 := make([]audit.Sample, pairs)
	for i := 0; i < pairs; i++ {
		base := uint64(100 + r.Intn(16))
		alt := base
		if leaky {
			alt = uint64(400 + r.Intn(16))
		} else {
			alt = uint64(100 + r.Intn(16))
		}
		s0[i] = audit.Sample{Cycle: uint64(10 * i), Value: base}
		s1[i] = audit.Sample{Cycle: uint64(10*i + 5), Value: alt}
	}
	return tenantStream{name: name, obs: interleave(name, s0, s1)}
}

// buildStreams assembles every tenant's stream up front, so the whole
// campaign is a pure function of the flags and replays identically.
func buildStreams(o *trafficOpts, baseSeed int64) ([]tenantStream, error) {
	var streams []tenantStream
	if o.serveSchemes != "" {
		for _, name := range strings.Split(o.serveSchemes, ",") {
			name = strings.TrimSpace(name)
			var scheme config.Scheme
			found := false
			for _, sc := range schemes {
				if sc.name == name {
					scheme, found = sc.scheme, true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("unknown scheme %q in -serve-schemes", name)
			}
			fmt.Fprintf(os.Stderr, "dagchaos: collecting %s tap streams (%d probes)\n", name, o.probes)
			s0, s1, err := eval.AuditStreams(scheme, o.probes, baseSeed)
			if err != nil {
				return nil, err
			}
			streams = append(streams, tenantStream{name: name, obs: interleave(name, s0, s1)})
		}
	}
	for i := 0; i < o.synthTenants; i++ {
		streams = append(streams, synthStream(i, o.synthPairs, baseSeed))
	}
	if len(streams) == 0 {
		return nil, fmt.Errorf("traffic mode needs -serve-schemes and/or -synth-tenants")
	}
	return streams, nil
}

// runTraffic executes the campaign and returns the process exit code.
func runTraffic(o *trafficOpts, baseSeed int64) int {
	ctx, cancel := context.WithTimeout(context.Background(), o.timeout)
	defer cancel()

	streams, err := buildStreams(o, baseSeed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dagchaos:", err)
		return 1
	}

	for _, st := range streams {
		c := &auditd.Client{
			Base: o.target, BatchSize: o.batch,
			Seed: rng.Derive(baseSeed, st.name), Retries: 60,
		}
		if o.chaos {
			batches := (len(st.obs)+o.batch-1)/o.batch + 1
			c.Faults = fault.ClientCampaign(rng.Derive(baseSeed, "chaos-"+st.name), batches, o.chaosEvents)
			c.Logf = func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "dagchaos: ["+st.name+"] "+format+"\n", args...)
			}
		}
		res, err := c.Stream(ctx, st.obs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dagchaos: stream %s: %v\n", st.name, err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "dagchaos: %s: %d accepted, %d duplicates, %d retries, %d sheds\n",
			st.name, res.Accepted, res.Duplicates, res.Retries, res.Shed)
		if !o.noFlush {
			starved, err := c.Flush(ctx, st.name)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dagchaos: flush %s: %v\n", st.name, err)
				return 1
			}
			if starved {
				fmt.Fprintf(os.Stderr, "dagchaos: %s: final window starved (insufficient samples)\n", st.name)
			}
		}
	}

	c := &auditd.Client{Base: o.target}
	raw, vr, err := c.Verdicts(ctx)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dagchaos:", err)
		return 1
	}
	if o.verdictsOut != "" {
		if err := ckpt.WriteFileAtomic(o.verdictsOut, raw); err != nil {
			fmt.Fprintln(os.Stderr, "dagchaos:", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "dagchaos: wrote verdicts to %s\n", o.verdictsOut)
	}
	for _, v := range vr.Tenants {
		state := "within budget"
		if !v.WithinBudget {
			state = fmt.Sprintf("LEAK (first window %d, max MI %.3f bits)", v.FirstExceeded, v.MaxMI)
		}
		fmt.Printf("%-20s windows=%-3d tripped=%-3d %s\n", v.Tenant, v.Windows, v.Tripped, state)
	}
	if o.gate != "" {
		if err := checkGate(o.gate, vr); err != nil {
			fmt.Fprintln(os.Stderr, "dagchaos: gate:", err)
			return 1
		}
		fmt.Fprintln(os.Stderr, "dagchaos: gate passed")
	}
	return 0
}

// checkGate enforces tenant=leak / tenant=clean expectations against the
// fetched verdicts.
func checkGate(gate string, vr *auditd.VerdictsResponse) error {
	byName := make(map[string]auditd.TenantVerdict, len(vr.Tenants))
	for _, v := range vr.Tenants {
		byName[v.Tenant] = v
	}
	for _, term := range strings.Split(gate, ",") {
		name, want, ok := strings.Cut(strings.TrimSpace(term), "=")
		if !ok || (want != "leak" && want != "clean") {
			return fmt.Errorf("bad gate term %q (want tenant=leak or tenant=clean)", term)
		}
		v, found := byName[name]
		if !found {
			return fmt.Errorf("tenant %q has no verdict", name)
		}
		switch {
		case v.Quarantined:
			return fmt.Errorf("tenant %q is quarantined: %s", name, v.QuarantineReason)
		case want == "leak" && v.WithinBudget:
			return fmt.Errorf("tenant %q expected to leak but stayed within budget (%d windows)", name, v.Windows)
		case want == "clean" && !v.WithinBudget:
			return fmt.Errorf("tenant %q expected clean but exceeded budget at window %d (max MI %.3f bits)",
				name, v.FirstExceeded, v.MaxMI)
		}
	}
	return nil
}
