// Command dagchaos runs randomized, seed-reported fault-injection
// campaigns against the simulated memory system: for each seed it draws a
// deterministic fault schedule (DRAM refresh storms, response delay/drop,
// shaper backpressure bursts, egress stalls), attaches it to a freshly
// built machine per scheme, and runs with the forward-progress watchdog
// armed. Any invariant violation is printed with the campaign seed, so
// the failure replays exactly with `-seed <n> -campaigns 1`.
//
// For DAGguise it additionally checks non-interference under faults: two
// runs differing only in the victim's secret must produce bit-identical
// shaped egress timing traces under the identical fault schedule.
//
// Usage:
//
//	dagchaos                          # 10 campaigns, every scheme
//	dagchaos -campaigns 50 -seed 7    # longer sweep from base seed 7
//	dagchaos -scheme dagguise         # one scheme only
//	dagchaos -cycles 200000           # longer runs
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dagguise/internal/config"
	"dagguise/internal/fault"
	"dagguise/internal/mem"
	"dagguise/internal/sim"
	"dagguise/internal/trace"
	"dagguise/internal/victim"
	"dagguise/internal/workload"
)

var schemes = []struct {
	name   string
	scheme config.Scheme
}{
	{"insecure", config.Insecure},
	{"fs", config.FixedService},
	{"fs-bta", config.FSBTA},
	{"tp", config.TemporalPartitioning},
	{"camouflage", config.Camouflage},
	{"dagguise", config.DAGguise},
}

func main() {
	campaigns := flag.Int("campaigns", 10, "number of fault campaigns per scheme")
	baseSeed := flag.Int64("seed", 1, "base campaign seed (campaign i uses seed+i)")
	cycles := flag.Uint64("cycles", 120_000, "cycles per run")
	events := flag.Int("events", 12, "fault events per campaign")
	schemeFlag := flag.String("scheme", "all", "scheme to torture: all, insecure, fs, fs-bta, tp, camouflage, dagguise")
	app := flag.String("app", "lbm", "co-runner workload")
	flag.Parse()

	if *schemeFlag != "all" {
		known := false
		for _, sc := range schemes {
			known = known || sc.name == *schemeFlag
		}
		if !known {
			names := make([]string, 0, len(schemes))
			for _, sc := range schemes {
				names = append(names, sc.name)
			}
			fmt.Fprintf(os.Stderr, "dagchaos: unknown scheme %q (use all, %s)\n", *schemeFlag, strings.Join(names, ", "))
			os.Exit(2)
		}
	}

	failures := 0
	for _, sc := range schemes {
		if *schemeFlag != "all" && *schemeFlag != sc.name {
			continue
		}
		for i := 0; i < *campaigns; i++ {
			seed := *baseSeed + int64(i)
			sched := fault.Campaign(seed, fault.CampaignConfig{
				Horizon: *cycles,
				Domains: []mem.Domain{1},
				// Keep individual storms well under the default
				// watchdog stall budget: a healthy machine must
				// never be flagged, so every report is a finding.
				MaxStorm: 4_000,
				Events:   *events,
			})
			if err := runCampaign(sc.scheme, *app, sched, *cycles); err != nil {
				failures++
				fmt.Printf("FAIL  %-10s seed=%-6d %v\n", sc.name, seed, err)
				continue
			}
			line := fmt.Sprintf("ok    %-10s seed=%-6d %d events", sc.name, seed, len(sched.Events))
			if sc.scheme == config.DAGguise {
				if err := checkNonInterference(*app, sched, *cycles); err != nil {
					failures++
					fmt.Printf("FAIL  %-10s seed=%-6d non-interference: %v\n", sc.name, seed, err)
					continue
				}
				line += "  egress traces secret-independent"
			}
			fmt.Println(line)
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "dagchaos: %d campaign(s) failed\n", failures)
		os.Exit(1)
	}
}

// build wires a two-core machine: a protected DocDist victim carrying the
// given secret and one unprotected co-runner.
func build(scheme config.Scheme, app string, secret int64) (*sim.System, error) {
	tr, err := victim.DocDistTrace(secret, victim.DefaultDocDist())
	if err != nil {
		return nil, err
	}
	prog, err := workload.ByName(app)
	if err != nil {
		return nil, err
	}
	cfg := config.Default(2, scheme)
	return sim.New(cfg, []sim.CoreSpec{
		{Name: "docdist", Source: &trace.Loop{Inner: tr}, Protected: true},
		{Name: app, Source: workload.MustSource(prog, 5)},
	})
}

// runCampaign attaches the schedule and runs with the default watchdog;
// any SimError comes back as the campaign verdict.
func runCampaign(scheme config.Scheme, app string, sched fault.Schedule, cycles uint64) error {
	sys, err := build(scheme, app, 11)
	if err != nil {
		return err
	}
	if err := sys.AttachFaults(sched); err != nil {
		return err
	}
	return sys.RunChecked(cycles)
}

// checkNonInterference runs the same fault schedule against two victims
// differing only in their secret and compares the shaped egress traces.
func checkNonInterference(app string, sched fault.Schedule, cycles uint64) error {
	run := func(secret int64) ([]sim.EgressEvent, error) {
		sys, err := build(config.DAGguise, app, secret)
		if err != nil {
			return nil, err
		}
		if err := sys.AttachFaults(sched); err != nil {
			return nil, err
		}
		sys.EnableEgressTrace()
		if err := sys.RunChecked(cycles); err != nil {
			return nil, err
		}
		return sys.EgressTrace(1), nil
	}
	a, err := run(11)
	if err != nil {
		return err
	}
	b, err := run(12)
	if err != nil {
		return err
	}
	if len(a) != len(b) {
		return fmt.Errorf("trace lengths diverge: %d vs %d events", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Errorf("traces diverge at event %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	if len(a) == 0 {
		return fmt.Errorf("empty egress trace")
	}
	return nil
}
