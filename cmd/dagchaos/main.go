// Command dagchaos runs randomized, seed-reported fault-injection
// campaigns against the simulated memory system: for each seed it draws a
// deterministic fault schedule (DRAM refresh storms, response delay/drop,
// shaper backpressure bursts, egress stalls), attaches it to a freshly
// built machine per scheme, and runs with the forward-progress watchdog
// armed. Any invariant violation is printed with the campaign seed, so
// the failure replays exactly with `-seed <n> -campaigns 1`.
//
// For DAGguise it additionally checks non-interference under faults: two
// runs differing only in the victim's secret must produce bit-identical
// shaped egress timing traces under the identical fault schedule.
//
// Usage:
//
//	dagchaos                          # 10 campaigns, every scheme
//	dagchaos -campaigns 50 -seed 7    # longer sweep from base seed 7
//	dagchaos -scheme dagguise         # one scheme only
//	dagchaos -cycles 200000           # longer runs
//	dagchaos -fail-trace fail.json    # Perfetto postmortem of the first failure
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dagguise/internal/config"
	"dagguise/internal/fault"
	"dagguise/internal/mem"
	"dagguise/internal/obs"
	"dagguise/internal/sim"
	"dagguise/internal/trace"
	"dagguise/internal/victim"
	"dagguise/internal/workload"
)

var schemes = []struct {
	name   string
	scheme config.Scheme
}{
	{"insecure", config.Insecure},
	{"fs", config.FixedService},
	{"fs-bta", config.FSBTA},
	{"tp", config.TemporalPartitioning},
	{"camouflage", config.Camouflage},
	{"dagguise", config.DAGguise},
}

func main() {
	campaigns := flag.Int("campaigns", 10, "number of fault campaigns per scheme")
	baseSeed := flag.Int64("seed", 1, "base campaign seed (campaign i uses seed+i)")
	cycles := flag.Uint64("cycles", 120_000, "cycles per run")
	events := flag.Int("events", 12, "fault events per campaign")
	schemeFlag := flag.String("scheme", "all", "scheme to torture: all, insecure, fs, fs-bta, tp, camouflage, dagguise")
	app := flag.String("app", "lbm", "co-runner workload")
	metrics := flag.Bool("metrics", false, "print the per-domain observability metrics table after the sweep")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON of all campaigns to this path")
	failTrace := flag.String("fail-trace", "", "dump a Perfetto-viewable event trace of the first failing seed to this path")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	flag.Parse()

	if *pprofAddr != "" {
		addr, err := obs.ServePprof(*pprofAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dagchaos:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "dagchaos: pprof at http://%s/debug/pprof/\n", addr)
	}
	var mx *obs.Registry
	var tr *obs.Tracer
	if *metrics {
		mx = obs.NewRegistry(3) // two cores + the system-wide slot
	}
	if *traceOut != "" {
		tr = obs.NewTracer(0)
	}

	if *schemeFlag != "all" {
		known := false
		for _, sc := range schemes {
			known = known || sc.name == *schemeFlag
		}
		if !known {
			names := make([]string, 0, len(schemes))
			for _, sc := range schemes {
				names = append(names, sc.name)
			}
			fmt.Fprintf(os.Stderr, "dagchaos: unknown scheme %q (use all, %s)\n", *schemeFlag, strings.Join(names, ", "))
			os.Exit(2)
		}
	}

	failures := 0
	for _, sc := range schemes {
		if *schemeFlag != "all" && *schemeFlag != sc.name {
			continue
		}
		for i := 0; i < *campaigns; i++ {
			seed := *baseSeed + int64(i)
			sched := fault.Campaign(seed, fault.CampaignConfig{
				Horizon: *cycles,
				Domains: []mem.Domain{1},
				// Keep individual storms well under the default
				// watchdog stall budget: a healthy machine must
				// never be flagged, so every report is a finding.
				MaxStorm: 4_000,
				Events:   *events,
			})
			if err := runCampaign(sc.scheme, *app, sched, *cycles, mx, tr); err != nil {
				failures++
				fmt.Printf("FAIL  %-10s seed=%-6d %v\n", sc.name, seed, err)
				if *failTrace != "" && failures == 1 {
					dumpFailTrace(*failTrace, sc.scheme, *app, sched, *cycles)
				}
				continue
			}
			line := fmt.Sprintf("ok    %-10s seed=%-6d %d events", sc.name, seed, len(sched.Events))
			if sc.scheme == config.DAGguise {
				if err := checkNonInterference(*app, sched, *cycles); err != nil {
					failures++
					fmt.Printf("FAIL  %-10s seed=%-6d non-interference: %v\n", sc.name, seed, err)
					if *failTrace != "" && failures == 1 {
						dumpFailTrace(*failTrace, sc.scheme, *app, sched, *cycles)
					}
					continue
				}
				line += "  egress traces secret-independent"
			}
			fmt.Println(line)
		}
	}
	if *metrics {
		fmt.Println()
		fmt.Print(obs.FormatSummary(mx.Snapshot(), 0))
	}
	if tr != nil {
		if err := obs.WriteChromeTraceFile(*traceOut, tr); err != nil {
			fmt.Fprintln(os.Stderr, "dagchaos:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "dagchaos: wrote %d trace events to %s\n", tr.Len(), *traceOut)
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "dagchaos: %d campaign(s) failed\n", failures)
		os.Exit(1)
	}
}

// build wires a two-core machine: a protected DocDist victim carrying the
// given secret and one unprotected co-runner.
func build(scheme config.Scheme, app string, secret int64) (*sim.System, error) {
	tr, err := victim.DocDistTrace(secret, victim.DefaultDocDist())
	if err != nil {
		return nil, err
	}
	prog, err := workload.ByName(app)
	if err != nil {
		return nil, err
	}
	cfg := config.Default(2, scheme)
	return sim.New(cfg, []sim.CoreSpec{
		{Name: "docdist", Source: &trace.Loop{Inner: tr}, Protected: true},
		{Name: app, Source: workload.MustSource(prog, 5)},
	})
}

// runCampaign attaches the schedule and runs with the default watchdog;
// any SimError comes back as the campaign verdict. mx and tr (either may
// be nil) collect observability across campaigns.
func runCampaign(scheme config.Scheme, app string, sched fault.Schedule, cycles uint64, mx *obs.Registry, tr *obs.Tracer) error {
	sys, err := build(scheme, app, 11)
	if err != nil {
		return err
	}
	if mx != nil || tr != nil {
		sys.Observe(mx, tr)
	}
	if err := sys.AttachFaults(sched); err != nil {
		return err
	}
	return sys.RunChecked(cycles)
}

// dumpFailTrace replays a failing campaign with an event tracer attached
// and exports the postmortem as Chrome trace-event JSON: the violation
// marker sits at the end of the Perfetto timeline, with the bank, shaper
// and refresh activity leading up to it.
func dumpFailTrace(path string, scheme config.Scheme, app string, sched fault.Schedule, cycles uint64) {
	tr := obs.NewTracer(0)
	if err := runCampaign(scheme, app, sched, cycles, nil, tr); err == nil {
		fmt.Fprintln(os.Stderr, "dagchaos: replay of failing seed did not fail; writing trace anyway")
	}
	if err := obs.WriteChromeTraceFile(path, tr); err != nil {
		fmt.Fprintln(os.Stderr, "dagchaos: fail-trace:", err)
		return
	}
	fmt.Fprintf(os.Stderr, "dagchaos: wrote failure postmortem (%d events) to %s (open in https://ui.perfetto.dev)\n", tr.Len(), path)
}

// checkNonInterference runs the same fault schedule against two victims
// differing only in their secret and compares the shaped egress traces.
func checkNonInterference(app string, sched fault.Schedule, cycles uint64) error {
	run := func(secret int64) ([]sim.EgressEvent, error) {
		sys, err := build(config.DAGguise, app, secret)
		if err != nil {
			return nil, err
		}
		if err := sys.AttachFaults(sched); err != nil {
			return nil, err
		}
		sys.EnableEgressTrace()
		if err := sys.RunChecked(cycles); err != nil {
			return nil, err
		}
		return sys.EgressTrace(1), nil
	}
	a, err := run(11)
	if err != nil {
		return err
	}
	b, err := run(12)
	if err != nil {
		return err
	}
	if len(a) != len(b) {
		return fmt.Errorf("trace lengths diverge: %d vs %d events", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Errorf("traces diverge at event %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	if len(a) == 0 {
		return fmt.Errorf("empty egress trace")
	}
	return nil
}
