// Command dagchaos runs randomized, seed-reported fault-injection
// campaigns against the simulated memory system: for each seed it draws a
// deterministic fault schedule (DRAM refresh storms, response delay/drop,
// shaper backpressure bursts, egress stalls), attaches it to a freshly
// built machine per scheme, and runs with the forward-progress watchdog
// armed. Any invariant violation is printed with the campaign seed, so
// the failure replays exactly with `-seed <n> -campaigns 1`.
//
// For DAGguise it additionally checks non-interference under faults: two
// runs differing only in the victim's secret must produce bit-identical
// attacker-observable response timing streams under the identical fault
// schedule.
//
// Campaigns run under the supervised runner (internal/runner): SIGINT,
// SIGTERM or -timeout stop the sweep at a cycle boundary, checkpoint the
// running job and persist a resume manifest; rerunning with -resume
// continues exactly where the kill landed and produces byte-identical
// results to an uninterrupted sweep.
//
// Usage:
//
//	dagchaos                          # 10 campaigns, every scheme
//	dagchaos -campaigns 50 -seed 7    # longer sweep from base seed 7
//	dagchaos -scheme dagguise         # one scheme only
//	dagchaos -cycles 200000           # longer runs
//	dagchaos -fail-trace fail.json    # Perfetto postmortem of the first failure
//	dagchaos -spans -trace-out t.json # nested job/chunk spans in the export
//	dagchaos -cycle-profile           # per-component cycle-attribution table
//	dagchaos -checkpoint-dir state -checkpoint-every 50000 -out results.json
//	dagchaos -checkpoint-dir state -resume -out results.json   # after a kill
//
// With -shards it instead drives the sharded campaign fabric
// (internal/fleet): a multi-channel, many-tenant non-interference sweep is
// split into (scheme x seed x channel-slice) shards, fanned over a worker
// pool, checkpointed per shard, and merged into one byte-stable report. A
// SIGKILL'd fleet resumes from its manifest and merges to identical bytes:
//
//	dagchaos -shards 4 -workers 8 -channels 4 -domains 100 \
//	    -cycles 20000 -checkpoint-dir fleetdir -out report.json
//
// With -target it instead becomes a traffic generator against a running
// dagauditd leakage-audit service: deterministic tenant streams (real
// simulated tap streams and/or synthetic leaky/clean tenants) are pushed
// through the auditd client, optionally under client-side transport chaos,
// and the fetched verdicts can gate CI:
//
//	dagchaos -target http://127.0.0.1:9470 -serve-schemes insecure,dagguise \
//	    -chaos -verdicts-out verdicts.json -gate insecure=leak,dagguise=clean
package main

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"dagguise/internal/audit"
	"dagguise/internal/ckpt"
	"dagguise/internal/config"
	"dagguise/internal/fault"
	"dagguise/internal/mem"
	"dagguise/internal/obs"
	"dagguise/internal/runner"
	"dagguise/internal/sim"
	"dagguise/internal/trace"
	"dagguise/internal/victim"
	"dagguise/internal/workload"
)

var schemes = []struct {
	name   string
	scheme config.Scheme
}{
	{"insecure", config.Insecure},
	{"fs", config.FixedService},
	{"fs-bta", config.FSBTA},
	{"tp", config.TemporalPartitioning},
	{"camouflage", config.Camouflage},
	{"dagguise", config.DAGguise},
}

// jobMeta carries what the verdict printer and fail-trace replayer need to
// know about each supervised job.
type jobMeta struct {
	schemeName string
	scheme     config.Scheme
	seed       int64
	secret     int64
	pair       string // twin job name for the non-interference compare
	sched      fault.Schedule
}

// jobOutput is one job's deterministic result payload: state-derived only,
// so an interrupted-and-resumed sweep reproduces it byte for byte.
type jobOutput struct {
	Scheme       string   `json:"scheme"`
	Seed         int64    `json:"seed"`
	Secret       int64    `json:"secret,omitempty"`
	Cycle        uint64   `json:"cycle"`
	Instructions []uint64 `json:"instructions"`
	TapSamples   int      `json:"tap_samples,omitempty"`
	TapSHA       string   `json:"tap_sha256,omitempty"`
}

func main() {
	campaigns := flag.Int("campaigns", 10, "number of fault campaigns per scheme")
	baseSeed := flag.Int64("seed", 1, "base campaign seed (campaign i uses seed+i)")
	cycles := flag.Uint64("cycles", 120_000, "cycles per run")
	events := flag.Int("events", 12, "fault events per campaign")
	schemeFlag := flag.String("scheme", "all", "scheme to torture: all, insecure, fs, fs-bta, tp, camouflage, dagguise")
	app := flag.String("app", "lbm", "co-runner workload")
	metrics := flag.Bool("metrics", false, "print the per-domain observability metrics table after the sweep")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON of all campaigns to this path")
	failTrace := flag.String("fail-trace", "", "dump a Perfetto-viewable event trace of the first failing seed to this path")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	ckptDir := flag.String("checkpoint-dir", "", "directory for checkpoints and the resume manifest (empty = no persistence)")
	ckptEvery := flag.Uint64("checkpoint-every", 50_000, "auto-checkpoint cadence in cycles (with -checkpoint-dir)")
	resume := flag.Bool("resume", false, "resume a previously interrupted sweep from -checkpoint-dir")
	timeout := flag.Duration("timeout", 0, "wall-clock budget for the sweep (0 = none); on expiry the running job checkpoints and the sweep exits resumably")
	retries := flag.Int("retries", 0, "supervised retries per job after a watchdog trip")
	out := flag.String("out", "", "write the deterministic sweep results as JSON to this path")
	spansFlag := flag.Bool("spans", false, "record runner job/chunk spans (exported with -trace-out; IDs survive checkpoint resume)")
	cycleProfFlag := flag.Bool("cycle-profile", false, "print the per-component cycle-attribution table after the sweep")
	topts := registerTrafficFlags()
	fopts := registerFleetFlags()
	flag.Parse()

	// -target switches dagchaos from torturing the simulator to torturing
	// a running dagauditd instance (see traffic.go).
	if topts.target != "" {
		os.Exit(runTraffic(topts, *baseSeed))
	}
	// -shards switches dagchaos to fleet mode: a sharded multi-channel,
	// many-tenant non-interference sweep over a worker pool (see fleet.go).
	if fopts.shards > 0 {
		os.Exit(runFleet(fopts, *schemeFlag, *campaigns, *baseSeed, *cycles,
			*ckptDir, *ckptEvery, *retries, *timeout,
			*out, *traceOut, *spansFlag, *metrics))
	}

	if *pprofAddr != "" {
		addr, err := obs.ServePprof(*pprofAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "dagchaos: pprof at http://%s/debug/pprof/\n", addr)
	}
	var mx *obs.Registry
	var tr *obs.Tracer
	if *metrics {
		mx = obs.NewRegistry(3) // two cores + the system-wide slot
	}
	if *traceOut != "" {
		tr = obs.NewTracer(0)
	}
	var sp *obs.Spans
	if *spansFlag {
		sp = obs.NewSpans(tr) // tr may be nil: IDs still thread through the runner
	}
	var prof *obs.CycleProfile
	if *cycleProfFlag {
		prof = obs.NewCycleProfile()
	}
	profStart := time.Now()

	if *schemeFlag != "all" {
		known := false
		for _, sc := range schemes {
			known = known || sc.name == *schemeFlag
		}
		if !known {
			names := make([]string, 0, len(schemes))
			for _, sc := range schemes {
				names = append(names, sc.name)
			}
			fmt.Fprintf(os.Stderr, "dagchaos: unknown scheme %q (use all, %s)\n", *schemeFlag, strings.Join(names, ", "))
			os.Exit(2)
		}
	}
	if *resume && *ckptDir == "" {
		fmt.Fprintln(os.Stderr, "dagchaos: -resume needs -checkpoint-dir")
		os.Exit(2)
	}
	if *ckptDir != "" && !*resume {
		if _, err := os.Stat(filepath.Join(*ckptDir, runner.ManifestName)); err == nil {
			fmt.Fprintf(os.Stderr, "dagchaos: %s already holds a manifest; pass -resume to continue it or remove the directory\n", *ckptDir)
			os.Exit(2)
		}
	}

	jobs, metas := buildJobs(*schemeFlag, *campaigns, *baseSeed, *cycles, *events, *app, mx, tr, prof)

	ctx, stop := runner.WithSignals(context.Background())
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	r := runner.New(runner.Config{
		Dir:     *ckptDir,
		Every:   *ckptEvery,
		Retries: *retries,
		Seed:    *baseSeed,
		Log:     os.Stderr,
		Spans:   sp,
	})
	records, err := r.Run(ctx, jobs)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintf(os.Stderr, "dagchaos: interrupted (%v); state saved, rerun with -checkpoint-dir %s -resume to continue\n", err, *ckptDir)
			os.Exit(3)
		}
		fatal(err)
	}

	failures := report(records, metas, *cycles, *app, *failTrace)

	if *out != "" {
		data, err := resultsJSON(records, metas)
		if err != nil {
			fatal(err)
		}
		if err := ckpt.WriteFileAtomic(*out, data); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "dagchaos: wrote results to %s\n", *out)
	}
	if *metrics {
		fmt.Println()
		fmt.Print(obs.FormatSummary(mx.Snapshot(), 0))
	}
	if prof != nil {
		var ticks uint64
		for _, rec := range records {
			ticks += rec.Cycles
		}
		fmt.Println()
		fmt.Print(prof.Report(time.Since(profStart), ticks).String())
	}
	if tr != nil {
		if err := obs.WriteChromeTraceFile(*traceOut, tr); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "dagchaos: wrote %d trace events to %s\n", tr.Len(), *traceOut)
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "dagchaos: %d campaign(s) failed\n", failures)
		os.Exit(1)
	}
}

// buildJobs lays out the supervised job list: one job per (scheme, seed),
// plus a secret-12 twin for every DAGguise campaign so non-interference is
// checked from two independently checkpointable runs.
func buildJobs(schemeFlag string, campaigns int, baseSeed int64, cycles uint64, events int, app string, mx *obs.Registry, tr *obs.Tracer, prof *obs.CycleProfile) ([]runner.Job, map[string]jobMeta) {
	var jobs []runner.Job
	metas := make(map[string]jobMeta)
	add := func(name string, m jobMeta) {
		metas[name] = m
		jobs = append(jobs, makeJob(name, m, cycles, app, mx, tr, prof))
	}
	for _, sc := range schemes {
		if schemeFlag != "all" && schemeFlag != sc.name {
			continue
		}
		for i := 0; i < campaigns; i++ {
			seed := baseSeed + int64(i)
			sched := fault.Campaign(seed, fault.CampaignConfig{
				Horizon: cycles,
				Domains: []mem.Domain{1},
				// Keep individual storms well under the default
				// watchdog stall budget: a healthy machine must
				// never be flagged, so every report is a finding.
				MaxStorm: 4_000,
				Events:   events,
			})
			name := fmt.Sprintf("%s-seed%d", sc.name, seed)
			if sc.scheme == config.DAGguise {
				alt := name + "-alt"
				add(name, jobMeta{schemeName: sc.name, scheme: sc.scheme, seed: seed, secret: 11, pair: alt, sched: sched})
				add(alt, jobMeta{schemeName: sc.name, scheme: sc.scheme, seed: seed, secret: 12, pair: name, sched: sched})
			} else {
				add(name, jobMeta{schemeName: sc.name, scheme: sc.scheme, seed: seed, secret: 11, sched: sched})
			}
		}
	}
	return jobs, metas
}

// makeJob wires one supervised job. The audit tap recording the
// attacker-observable response stream is part of the checkpointed state,
// so the digest in the result is identical whether or not the job was
// interrupted and resumed.
func makeJob(name string, m jobMeta, cycles uint64, app string, mx *obs.Registry, tr *obs.Tracer, prof *obs.CycleProfile) runner.Job {
	var tap *audit.Tap
	withTap := m.scheme == config.DAGguise
	return runner.Job{
		Name:   name,
		Cycles: cycles,
		Build: func(int) (*sim.System, error) {
			sys, err := build(m.scheme, app, m.secret)
			if err != nil {
				return nil, err
			}
			if mx != nil || tr != nil {
				sys.Observe(mx, tr)
			}
			sys.Profile(prof)
			if err := sys.AttachFaults(m.sched); err != nil {
				return nil, err
			}
			if withTap {
				tap = audit.NewTap()
				sys.AuditResponses(1, tap)
			}
			return sys, nil
		},
		Finish: func(sys *sim.System) (json.RawMessage, error) {
			o := jobOutput{Scheme: m.schemeName, Seed: m.seed, Cycle: sys.Now()}
			if withTap {
				o.Secret = m.secret
			}
			st, err := sys.SaveState()
			if err != nil {
				return nil, err
			}
			for _, cs := range st.CoreStates {
				o.Instructions = append(o.Instructions, cs.Stats.Instructions)
			}
			if withTap {
				o.TapSamples = tap.Len()
				o.TapSHA = tapDigest(tap)
			}
			return json.Marshal(o)
		},
	}
}

// tapDigest hashes the (cycle, value) response-timing stream.
func tapDigest(t *audit.Tap) string {
	h := sha256.New()
	var buf [16]byte
	for _, s := range t.Samples() {
		binary.LittleEndian.PutUint64(buf[:8], s.Cycle)
		binary.LittleEndian.PutUint64(buf[8:], s.Value)
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// report prints the per-campaign verdicts and the DAGguise
// non-interference comparisons, returning the failure count.
func report(records []runner.JobRecord, metas map[string]jobMeta, cycles uint64, app, failTrace string) int {
	byName := make(map[string]*runner.JobRecord, len(records))
	for i := range records {
		byName[records[i].Name] = &records[i]
	}
	failures := 0
	dumped := false
	for i := range records {
		rec := &records[i]
		m := metas[rec.Name]
		if m.secret == 12 {
			continue // reported with its twin
		}
		if rec.State == runner.StateFailed {
			failures++
			fmt.Printf("FAIL  %-10s seed=%-6d %s\n", m.schemeName, m.seed, rec.Error)
			if failTrace != "" && !dumped {
				dumpFailTrace(failTrace, m.scheme, app, m.sched, cycles)
				dumped = true
			}
			continue
		}
		line := fmt.Sprintf("ok    %-10s seed=%-6d %d events", m.schemeName, m.seed, len(m.sched.Events))
		if m.pair != "" {
			twin := byName[m.pair]
			switch {
			case twin == nil || twin.State == runner.StateFailed:
				failures++
				fmt.Printf("FAIL  %-10s seed=%-6d twin run failed: %s\n", m.schemeName, m.seed, twinError(twin))
				continue
			default:
				var a, b jobOutput
				if err := json.Unmarshal(rec.Result, &a); err == nil {
					_ = json.Unmarshal(twin.Result, &b)
				}
				if a.TapSamples == 0 || a.TapSHA != b.TapSHA {
					failures++
					fmt.Printf("FAIL  %-10s seed=%-6d non-interference: response streams diverge (%d vs %d samples)\n",
						m.schemeName, m.seed, a.TapSamples, b.TapSamples)
					if failTrace != "" && !dumped {
						dumpFailTrace(failTrace, m.scheme, app, m.sched, cycles)
						dumped = true
					}
					continue
				}
				line += "  response streams secret-independent"
			}
		}
		fmt.Println(line)
	}
	return failures
}

func twinError(rec *runner.JobRecord) string {
	if rec == nil {
		return "missing"
	}
	return rec.Error
}

// resultsJSON renders the deterministic sweep outcome: job results in
// campaign order, no attempt counts, no checkpoint names, no timestamps —
// the byte-identical artifact the CI kill-and-resume job diffs.
func resultsJSON(records []runner.JobRecord, metas map[string]jobMeta) ([]byte, error) {
	type entry struct {
		Name   string          `json:"name"`
		State  runner.JobState `json:"state"`
		Result json.RawMessage `json:"result,omitempty"`
		Error  string          `json:"error,omitempty"`
	}
	out := struct {
		Jobs []entry `json:"jobs"`
	}{}
	for _, rec := range records {
		out.Jobs = append(out.Jobs, entry{Name: rec.Name, State: rec.State, Result: rec.Result, Error: rec.Error})
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dagchaos:", err)
	os.Exit(1)
}

// build wires a two-core machine: a protected DocDist victim carrying the
// given secret and one unprotected co-runner.
func build(scheme config.Scheme, app string, secret int64) (*sim.System, error) {
	tr, err := victim.DocDistTrace(secret, victim.DefaultDocDist())
	if err != nil {
		return nil, err
	}
	prog, err := workload.ByName(app)
	if err != nil {
		return nil, err
	}
	cfg := config.Default(2, scheme)
	return sim.New(cfg, []sim.CoreSpec{
		{Name: "docdist", Source: &trace.Loop{Inner: tr}, Protected: true},
		{Name: app, Source: workload.MustSource(prog, 5)},
	})
}

// dumpFailTrace replays a failing campaign with an event tracer attached
// and exports the postmortem as Chrome trace-event JSON: the violation
// marker sits at the end of the Perfetto timeline, with the bank, shaper
// and refresh activity leading up to it.
func dumpFailTrace(path string, scheme config.Scheme, app string, sched fault.Schedule, cycles uint64) {
	tr := obs.NewTracer(0)
	sys, err := build(scheme, app, 11)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dagchaos: fail-trace:", err)
		return
	}
	sys.Observe(nil, tr)
	if err := sys.AttachFaults(sched); err != nil {
		fmt.Fprintln(os.Stderr, "dagchaos: fail-trace:", err)
		return
	}
	if err := sys.RunChecked(cycles); err == nil {
		fmt.Fprintln(os.Stderr, "dagchaos: replay of failing seed did not fail; writing trace anyway")
	}
	if err := obs.WriteChromeTraceFile(path, tr); err != nil {
		fmt.Fprintln(os.Stderr, "dagchaos: fail-trace:", err)
		return
	}
	fmt.Fprintf(os.Stderr, "dagchaos: wrote failure postmortem (%d events) to %s (open in https://ui.perfetto.dev)\n", tr.Len(), path)
}
