package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"dagguise/internal/ckpt"
	"dagguise/internal/fault"
	"dagguise/internal/fleet"
	"dagguise/internal/obs"
	"dagguise/internal/runner"
	"dagguise/internal/telem"
)

// fleetFlags selects and shapes fleet mode: instead of per-campaign fault
// injection on a two-core machine, dagchaos fans a multi-channel,
// many-tenant non-interference sweep over a worker pool (internal/fleet).
type fleetFlags struct {
	shards        int
	workers       int
	channels      int
	domains       int
	telemDir      string
	promOut       string
	join          bool
	proc          string
	leaseTTL      time.Duration
	faultEvents   int
	fsChaos       int64
	fsChaosEvents int
}

func registerFleetFlags() *fleetFlags {
	f := &fleetFlags{}
	flag.IntVar(&f.shards, "shards", 0, "fleet mode: split each (scheme, seed) cell into this many channel-slice shards (0 = fleet mode off)")
	flag.IntVar(&f.workers, "workers", 0, "fleet mode: worker pool size (0 = GOMAXPROCS)")
	flag.IntVar(&f.channels, "channels", 4, "fleet mode: memory channels in the multi-channel machine")
	flag.IntVar(&f.domains, "domains", 100, "fleet mode: tenant security domains")
	flag.StringVar(&f.telemDir, "telem-dir", "", "fleet mode: write per-worker telemetry streams here and a deterministic telem-report.json after the run (watch live with dagtop -dir)")
	flag.StringVar(&f.promOut, "prom-out", "", "fleet mode: write fleet_* and per-shard counters in Prometheus text format to this path after the run")
	flag.BoolVar(&f.join, "join", false, "fleet mode: join an existing fleet directory as one of several cooperating processes (requires -checkpoint-dir; shard ownership is arbitrated by lease files)")
	flag.StringVar(&f.proc, "proc", "", "fleet mode: process name for -join (namespaces telemetry streams and lease owners; default p<pid>)")
	flag.DurationVar(&f.leaseTTL, "lease-ttl", 0, "fleet mode: shard lease TTL — an unrenewed lease is presumed dead and stealable after this long (0 = 10s)")
	flag.IntVar(&f.faultEvents, "fault-events", 0, "fleet mode: derive a seeded per-shard fault campaign of this many events (DRAM stalls, shaper rejects, egress stalls, deferred responses) from the sweep fingerprint (0 = clean sweep)")
	flag.Int64Var(&f.fsChaos, "fs-chaos", 0, "fleet mode: seed for injected storage faults (torn writes, EIO, rename stalls, fsync delays) under every manifest/lease/checkpoint/result write (0 = off)")
	flag.IntVar(&f.fsChaosEvents, "fs-chaos-events", 16, "fleet mode: number of storage faults injected per process when -fs-chaos is set")
	return f
}

// runFleet is the fleet-mode main: build the sweep, run it under signal
// supervision, print per-scheme verdicts, enforce the audit gate. Exit
// codes match campaign mode: 0 clean, 1 failure, 2 usage, 3 interrupted
// (resumable by re-running with the same flags and -checkpoint-dir).
func runFleet(f *fleetFlags, schemeFlag string, campaigns int, baseSeed int64, cycles uint64,
	dir string, every uint64, retries int, timeout time.Duration,
	out, traceOut string, wantSpans, metrics bool) int {
	if campaigns <= 0 {
		fmt.Fprintln(os.Stderr, "dagchaos: fleet mode needs -campaigns >= 1")
		return 2
	}
	seeds := make([]int64, campaigns)
	for i := range seeds {
		seeds[i] = baseSeed + int64(i)
	}
	sweep := fleet.DefaultSweep(f.channels, f.domains, seeds, cycles)
	sweep.FaultEvents = f.faultEvents
	switch schemeFlag {
	case "all":
	case "insecure", "dagguise":
		sweep.Schemes = []string{schemeFlag}
	default:
		fmt.Fprintf(os.Stderr, "dagchaos: fleet mode simulates only -scheme all, insecure or dagguise (got %q)\n", schemeFlag)
		return 2
	}
	// -shards is the slice count per cell; the sweep wants the slice width.
	if f.shards > f.channels {
		f.shards = f.channels
	}
	sweep.SliceChannels = (f.channels + f.shards - 1) / f.shards

	if f.join && dir == "" {
		fmt.Fprintln(os.Stderr, "dagchaos: -join needs -checkpoint-dir (the shared fleet directory)")
		return 2
	}
	if dir == "" {
		tmp, err := os.MkdirTemp("", "dagchaos-fleet-*")
		if err != nil {
			fmt.Fprintln(os.Stderr, "dagchaos:", err)
			return 1
		}
		defer os.RemoveAll(tmp)
		fmt.Fprintf(os.Stderr, "dagchaos: no -checkpoint-dir; using throwaway manifest dir %s (not resumable)\n", tmp)
		dir = tmp
	}
	proc := ""
	if f.join {
		proc = f.proc
		if proc == "" {
			proc = fmt.Sprintf("p%d", os.Getpid())
		}
	}
	var fsInj *fault.FSInjector
	if f.fsChaos != 0 {
		ops := 8 * f.fsChaosEvents
		if ops < 64 {
			ops = 64
		}
		inj, err := fault.NewFSInjector(fault.FSCampaign(f.fsChaos, ops, f.fsChaosEvents))
		if err != nil {
			fmt.Fprintln(os.Stderr, "dagchaos:", err)
			return 1
		}
		fsInj = inj
	}

	var mx *obs.Registry
	if metrics || f.promOut != "" {
		mx = obs.NewRegistry(1)
	}
	var tr *obs.Tracer
	if traceOut != "" {
		tr = obs.NewTracer(0)
	}
	var sp *obs.Spans
	if wantSpans {
		sp = obs.NewSpans(tr)
	}

	ctx, stop := runner.WithSignals(context.Background())
	defer stop()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	rep, err := fleet.Run(ctx, sweep, fleet.Options{
		Workers:         f.workers,
		Dir:             dir,
		CheckpointEvery: every,
		Retries:         retries,
		Backoff:         100 * time.Millisecond,
		MaxBackoff:      5 * time.Second,
		Log:             os.Stderr,
		Spans:           sp,
		Mx:              mx,
		TelemDir:        f.telemDir,
		Proc:            proc,
		LeaseTTL:        f.leaseTTL,
		FS:              fsInj,
	})
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintf(os.Stderr, "dagchaos: fleet interrupted (%v); manifest saved, rerun with the same flags and -checkpoint-dir %s to resume\n", err, dir)
			return 3
		}
		fmt.Fprintln(os.Stderr, "dagchaos:", err)
		return 1
	}

	for _, v := range rep.Verdicts {
		status := "ok  "
		if v.Secure == v.Interference {
			status = "FAIL"
		}
		verdict := "no interference"
		if v.Interference {
			verdict = "interference detected"
		}
		fmt.Printf("%s  %-10s shards=%-3d %s\n", status, v.Scheme, v.Shards, verdict)
	}
	fmt.Printf("fleet: %d shards, %d tenants x %d channels, %d cycles each, %d requests completed\n",
		rep.Totals.Shards, f.domains, f.channels, cycles, rep.Totals.Completed)

	if out != "" {
		blob, err := rep.Encode()
		if err != nil {
			fmt.Fprintln(os.Stderr, "dagchaos:", err)
			return 1
		}
		if err := ckpt.WriteFileAtomic(out, blob); err != nil {
			fmt.Fprintln(os.Stderr, "dagchaos:", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "dagchaos: wrote fleet report to %s\n", out)
	}
	if metrics {
		fmt.Println()
		fmt.Print(obs.FormatSummary(mx.Snapshot(), 0))
	}
	if tr != nil {
		if err := obs.WriteChromeTraceFile(traceOut, tr); err != nil {
			fmt.Fprintln(os.Stderr, "dagchaos:", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "dagchaos: wrote %d trace events to %s\n", tr.Len(), traceOut)
	}
	if f.telemDir != "" {
		if code := writeTelemReport(f.telemDir); code != 0 {
			return code
		}
	}
	if f.promOut != "" {
		if code := writeFleetProm(f.promOut, dir, mx); code != 0 {
			return code
		}
	}
	if err := rep.Gate(); err != nil {
		fmt.Fprintln(os.Stderr, "dagchaos:", err)
		return 1
	}
	return 0
}

// writeTelemReport folds the run's telemetry streams into the
// deterministic telem-report.json next to them (the byte-diffable
// artifact the telem-soak CI job compares) and prints its alerts.
func writeTelemReport(telemDir string) int {
	col, err := telem.Collect(telemDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dagchaos: telem:", err)
		return 1
	}
	trep, err := col.Report(nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dagchaos: telem:", err)
		return 1
	}
	blob, err := trep.Encode()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dagchaos: telem:", err)
		return 1
	}
	path := filepath.Join(telemDir, "telem-report.json")
	if err := ckpt.WriteFileAtomic(path, blob); err != nil {
		fmt.Fprintln(os.Stderr, "dagchaos: telem:", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "dagchaos: wrote telemetry report (%d series, %d spans, %d alerts) to %s\n",
		len(trep.Series), len(trep.Spans), len(trep.Alerts), path)
	for _, a := range trep.Alerts {
		fmt.Fprintf(os.Stderr, "dagchaos: telem alert: %s %s %s (value %g %s %g)\n",
			a.Severity, a.Rule, a.State, a.Value, a.Op, a.Threshold)
	}
	return 0
}

// writeFleetProm renders the fleet_* registry counters plus the
// per-shard manifest counters in Prometheus text format.
func writeFleetProm(out, manifestDir string, mx *obs.Registry) int {
	var buf bytes.Buffer
	if err := obs.WritePrometheus(&buf, mx.Snapshot(), ""); err != nil {
		fmt.Fprintln(os.Stderr, "dagchaos:", err)
		return 1
	}
	m, err := fleet.LoadManifest(filepath.Join(manifestDir, fleet.ManifestName))
	if err != nil {
		fmt.Fprintln(os.Stderr, "dagchaos:", err)
		return 1
	}
	if err := fleet.WriteShardPrometheus(&buf, m.Records); err != nil {
		fmt.Fprintln(os.Stderr, "dagchaos:", err)
		return 1
	}
	if err := ckpt.WriteFileAtomic(out, buf.Bytes()); err != nil {
		fmt.Fprintln(os.Stderr, "dagchaos:", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "dagchaos: wrote fleet metrics to %s\n", out)
	return 0
}
