// Attack demonstration: the memory timing side channel end to end.
//
// First the Figure 1 primer: the attacker's own probe latency classifies
// the victim's behaviour (idle / different bank / same bank same row /
// same bank different row) on an unprotected memory controller.
//
// Then the leakage comparison across every scheme, including Camouflage's
// Figure 2 failure: its interval distribution is enforced, but the
// *ordering* of intervals and the banks of forwarded requests still leak.
//
// Run with: go run ./examples/attackdemo
package main

import (
	"fmt"
	"log"

	"dagguise"
)

func main() {
	fmt.Println("Figure 1 — what an attacker sees on an unprotected controller:")
	rows, err := dagguise.Figure1Primer(300)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rows {
		fmt.Printf("  victim: %-28s attacker mean latency %6.1f cycles\n", r.Scenario, r.MeanLatency)
	}
	fmt.Println("  -> bank and row behaviour of the victim is readable from the attacker's own latency")

	fmt.Println("\nLeakage of a one-bit secret (Figure 5 patterns) per scheme:")
	secret0 := dagguise.AttackPattern{Gaps: []uint64{100}, Banks: []int{0, 1, 2, 3}}
	secret1 := dagguise.AttackPattern{Gaps: []uint64{200}, Banks: []int{0, 1, 2, 3}}
	probe := dagguise.AttackProbe{Bank: 0, Row: 0, Gap: 120}
	dist := dagguise.CamouflageDistribution{Intervals: []uint64{200, 400}}

	fmt.Printf("  %-12s %14s %14s %10s\n", "scheme", "histogram MI", "sequence MI", "accuracy")
	for _, scheme := range []dagguise.Scheme{
		dagguise.Insecure, dagguise.Camouflage, dagguise.FixedService,
		dagguise.FSBTA, dagguise.TemporalPartitioning, dagguise.DAGguise,
	} {
		res, err := dagguise.MeasureLeakage(scheme, dagguise.Template{}, dist,
			secret0, secret1, probe, 150, 3)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s %14.4f %14.4f %10.2f\n", scheme, res.AggregateMI, res.SequenceMI, res.Accuracy)
	}
	fmt.Println("\n  -> Camouflage hides the aggregate histogram but not the fine-grained schedule (Figure 2);")
	fmt.Println("     FS / FS-BTA / TP / DAGguise leave the attacker at coin-flip accuracy")
}
