// The Figure 5 running example: security and adaptivity.
//
// Part 1 (security): a victim emits requests with a 100-cycle gap when its
// secret is 0 and a 200-cycle gap when it is 1. An attacker times its own
// same-bank probes. On the insecure baseline the two secrets are
// immediately distinguishable; behind DAGguise the attacker's latency
// sequences are bit-for-bit identical.
//
// Part 2 (adaptivity): a co-runner alternates between a light phase and a
// heavy phase. The defense rDAG's timing dependencies are relative to
// completion times, so the shaper automatically slows during the heavy
// phase — yielding bandwidth — and speeds back up afterwards, with no
// re-profiling.
//
// Run with: go run ./examples/runningexample
package main

import (
	"fmt"
	"log"

	"dagguise"
)

func security() {
	secret0 := dagguise.AttackPattern{Gaps: []uint64{100}, Banks: []int{0, 1, 2, 3}}
	secret1 := dagguise.AttackPattern{Gaps: []uint64{200}, Banks: []int{0, 1, 2, 3}}
	probe := dagguise.AttackProbe{Bank: 0, Row: 0, Gap: 120}

	fmt.Println("Part 1 — security: can the attacker tell secret 0 from secret 1?")
	for _, scheme := range []dagguise.Scheme{dagguise.Insecure, dagguise.DAGguise} {
		res, err := dagguise.MeasureLeakage(scheme, dagguise.Template{}, dagguise.CamouflageDistribution{},
			secret0, secret1, probe, 200, 2)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s leakage %.3f bits/probe, secret-guessing accuracy %.0f%%\n",
			scheme, res.SequenceMI, res.Accuracy*100)
	}
}

// phasedCoRunner builds a trace that alternates a light phase (sparse
// independent reads) and a heavy phase (dense reads), mimicking
// Figure 5(c)'s unprotected program.
func phasedCoRunner() *dagguise.TraceSlice {
	var ops []dagguise.TraceOp
	addr := uint64(1 << 33)
	for block := 0; block < 8; block++ {
		// Sized so each phase spans roughly two measurement windows.
		gap, n := 400, 2400 // light phase: one miss per ~400 instructions
		if block%2 == 1 {
			gap, n = 2, 9000 // heavy phase: back-to-back misses
		}
		for i := 0; i < n; i++ {
			addr += 64
			ops = append(ops, dagguise.TraceOp{Addr: addr, Gap: gap})
		}
	}
	return &dagguise.TraceSlice{Ops: ops}
}

func adaptivity() {
	fmt.Println("\nPart 2 — adaptivity: the shaper yields bandwidth under contention")
	victimTrace, err := dagguise.DocDistTrace(42, dagguise.DefaultDocDistConfig())
	if err != nil {
		log.Fatal(err)
	}
	sys, err := dagguise.NewSystem(dagguise.DefaultConfig(2, dagguise.DAGguise), []dagguise.CoreSpec{
		{
			Name:      "victim",
			Source:    dagguise.LoopTrace(victimTrace),
			Protected: true,
			Defense:   dagguise.Template{Sequences: 8, Weight: 150, WriteRatio: 0.001, Banks: 8},
		},
		{Name: "phased", Source: dagguise.LoopTrace(phasedCoRunner())},
	})
	if err != nil {
		log.Fatal(err)
	}
	sys.Run(20_000) // warm up
	fmt.Println("  window   victim GB/s   co-runner GB/s")
	for w := 0; w < 8; w++ {
		res := sys.Measure(0, 60_000)
		fmt.Printf("  %6d %13.2f %16.2f\n", w, res.Cores[0].BandwidthGBps, res.Cores[1].BandwidthGBps)
	}
	fmt.Println("  (victim bandwidth dips in the co-runner's heavy windows and recovers after —")
	fmt.Println("   the rDAG stretched under contention instead of holding a static allocation)")
}

func main() {
	security()
	adaptivity()
}
