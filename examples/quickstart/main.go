// Quickstart: protect a real victim application with DAGguise.
//
// This example records the memory trace of an actual Document Distance
// computation (whose access pattern leaks its private input document),
// selects a defense rDAG, runs the victim behind a DAGguise shaper next to
// an unprotected SPEC-like co-runner, and reports what each side paid.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dagguise"
)

func main() {
	// 1. The victim: a real DocDist computation over a private document.
	victimTrace, err := dagguise.DocDistTrace(42, dagguise.DefaultDocDistConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded DocDist trace: %d memory operations\n", len(victimTrace.Ops))

	// 2. The co-runner: a synthetic SPEC-like application (xz profile).
	profile, err := dagguise.WorkloadByName("xz")
	if err != nil {
		log.Fatal(err)
	}
	coRunner, err := dagguise.NewWorkloadSource(profile, 7)
	if err != nil {
		log.Fatal(err)
	}

	// 3. The defense rDAG: the knee of DocDist's profiling curve on this
	// simulator (run `dagprof` to derive one for your own victim).
	defense := dagguise.Template{Sequences: 8, Weight: 150, WriteRatio: 0.001, Banks: 8}

	run := func(scheme dagguise.Scheme, protected bool) dagguise.Result {
		cp := *victimTrace // fresh cursor per run
		sys, err := dagguise.NewSystem(dagguise.DefaultConfig(2, scheme), []dagguise.CoreSpec{
			{Name: "docdist", Source: dagguise.LoopTrace(&cp), Protected: protected, Defense: defense},
			{Name: "xz", Source: coRunner},
		})
		if err != nil {
			log.Fatal(err)
		}
		return sys.Measure(30_000, 300_000)
	}

	insecure := run(dagguise.Insecure, false)
	protected := run(dagguise.DAGguise, true)

	fmt.Println("\n                 victim IPC   co-runner IPC   memory traffic")
	fmt.Printf("insecure         %10.3f %15.3f %11.2f GB/s\n",
		insecure.Cores[0].IPC, insecure.Cores[1].IPC, insecure.TotalGBps)
	fmt.Printf("DAGguise         %10.3f %15.3f %11.2f GB/s\n",
		protected.Cores[0].IPC, protected.Cores[1].IPC, protected.TotalGBps)
	fmt.Printf("normalized       %10.3f %15.3f\n",
		protected.Cores[0].IPC/insecure.Cores[0].IPC,
		protected.Cores[1].IPC/insecure.Cores[1].IPC)
	fmt.Printf("\nshaper: %d real requests forwarded, %d fakes emitted\n",
		protected.Cores[0].ShaperForwarded, protected.Cores[0].ShaperFakes)
	fmt.Println("the victim's memory access pattern is now the defense rDAG's — independent of its document")
}
