// Scaling: four protected victims on an eight-core machine (Figure 10's
// scenario). Two DocDist and two DNA-alignment victims run behind their
// own shapers next to four unprotected co-runners, under FS-BTA and under
// DAGguise, normalized to the insecure baseline.
//
// Run with: go run ./examples/scaling
package main

import (
	"fmt"
	"log"

	"dagguise"
)

func main() {
	docdist, err := dagguise.DocDistTrace(42, dagguise.DefaultDocDistConfig())
	if err != nil {
		log.Fatal(err)
	}
	dna, err := dagguise.DNATrace(43, dagguise.DefaultDNAConfig())
	if err != nil {
		log.Fatal(err)
	}
	defense := dagguise.Template{Sequences: 4, Weight: 300, WriteRatio: 0.001, Banks: 8}

	build := func(scheme dagguise.Scheme, protected bool) *dagguise.System {
		var specs []dagguise.CoreSpec
		victims := []struct {
			name string
			tr   *dagguise.TraceSlice
		}{{"docdist-0", docdist}, {"dna-0", dna}, {"docdist-1", docdist}, {"dna-1", dna}}
		for i, v := range victims {
			cp := *v.tr
			specs = append(specs, dagguise.CoreSpec{
				Name: v.name, Source: dagguise.LoopTrace(&cp),
				Protected: protected, Defense: defense,
			})
			profile, err := dagguise.WorkloadByName("x264")
			if err != nil {
				log.Fatal(err)
			}
			co, err := dagguise.NewWorkloadSource(profile, int64(i)*13+5)
			if err != nil {
				log.Fatal(err)
			}
			specs = append(specs, dagguise.CoreSpec{Name: fmt.Sprintf("x264-%d", i), Source: co})
		}
		sys, err := dagguise.NewSystem(dagguise.DefaultConfig(8, scheme), specs)
		if err != nil {
			log.Fatal(err)
		}
		return sys
	}

	measure := func(scheme dagguise.Scheme, protected bool) dagguise.Result {
		return build(scheme, protected).Measure(30_000, 250_000)
	}

	base := measure(dagguise.Insecure, false)
	fs := measure(dagguise.FSBTA, true)
	dag := measure(dagguise.DAGguise, true)

	fmt.Println("eight cores: 2x DocDist + 2x DNA protected, 4x x264 unprotected")
	fmt.Printf("%-12s %12s %12s\n", "core", "fs-bta", "dagguise")
	var fsSum, dagSum float64
	for i := range base.Cores {
		fn := fs.Cores[i].IPC / base.Cores[i].IPC
		dn := dag.Cores[i].IPC / base.Cores[i].IPC
		fsSum += fn
		dagSum += dn
		fmt.Printf("%-12s %12.3f %12.3f\n", base.Cores[i].Name, fn, dn)
	}
	n := float64(len(base.Cores))
	fmt.Printf("%-12s %12.3f %12.3f\n", "average", fsSum/n, dagSum/n)
	fmt.Printf("\nDAGguise delivers %.0f%% more system throughput than FS-BTA at the same security level\n",
		(dagSum/fsSum-1)*100)
}
