// The §7 generalisation: DAGguise beyond memory controllers.
//
// The shared resource here is the functional-unit ports of an SMT core
// (the PORTSMASH channel): a victim computes a square-and-multiply-style
// operation whose use of the non-pipelined divider encodes its key bits,
// while an attacker thread times its own divider probes. Shaping the
// victim's dispatch stream with the *same* rDAG machinery that shapes
// memory traffic closes the channel.
//
// Run with: go run ./examples/smtchannel
package main

import (
	"fmt"
	"log"

	"dagguise"
)

func main() {
	key0 := []int{0, 1, 0, 0, 1, 0, 1, 0} // two candidate secrets
	key1 := []int{1, 1, 1, 0, 0, 1, 1, 1}

	res, err := dagguise.SMTMeasureLeakage(key0, key1, dagguise.SMTDefaultDefense(), 150)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("SMT functional-unit port channel (attacker times its own divider probes):")
	fmt.Printf("  unshaped victim:        %.3f bits/probe leaked\n", res.InsecureMI)
	fmt.Printf("  DAGguise port shaper:   %.3f bits/probe leaked\n", res.ShapedMI)

	// Show a few raw attacker observations for colour.
	insecure0, _ := dagguise.SMTRunChannel(dagguise.SMTSecretTrace(key0), false, dagguise.SMTDefaultDefense(), 12)
	insecure1, _ := dagguise.SMTRunChannel(dagguise.SMTSecretTrace(key1), false, dagguise.SMTDefaultDefense(), 12)
	shaped0, _ := dagguise.SMTRunChannel(dagguise.SMTSecretTrace(key0), true, dagguise.SMTDefaultDefense(), 12)
	shaped1, _ := dagguise.SMTRunChannel(dagguise.SMTSecretTrace(key1), true, dagguise.SMTDefaultDefense(), 12)
	fmt.Println("\n  attacker probe latencies (cycles):")
	fmt.Printf("  unshaped, secret A: %v\n", insecure0)
	fmt.Printf("  unshaped, secret B: %v\n", insecure1)
	fmt.Printf("  shaped,   secret A: %v\n", shaped0)
	fmt.Printf("  shaped,   secret B: %v\n", shaped1)
	fmt.Println("\n  the shaped rows are identical: the schedule the attacker contends with is the rDAG's, not the victim's")
}
