package dagguise

import "dagguise/internal/rdag"

// Graph is a finite Directed Acyclic Request Graph (§4.1): vertices are
// memory requests (bank + read/write), weighted edges are timing
// dependencies from a source request's completion to a destination
// request's arrival.
type Graph = rdag.Graph

// Vertex is one memory request in a Graph.
type Vertex = rdag.Vertex

// GraphEdge is a timing dependency in a Graph.
type GraphEdge = rdag.Edge

// VertexID indexes a vertex within a Graph.
type VertexID = rdag.VertexID

// Template is the configurable rDAG template of §4.3: parallel sequences
// of uniform-weight chains cycling over the banks, with a deterministic
// write ratio. Templates are the practical form of defense rDAGs.
type Template = rdag.Template

// TemplateSpace is the profiling search space over templates.
type TemplateSpace = rdag.Space

// Driver is the runtime form of a defense rDAG executed by the shaper.
type Driver = rdag.Driver

// Slot is a request prescribed by a Driver.
type Slot = rdag.Slot

// NewPatternDriver builds the hardware-shaped driver for a template: one
// small state machine per parallel sequence.
func NewPatternDriver(tpl Template) (*rdag.PatternDriver, error) {
	return rdag.NewPatternDriver(tpl)
}

// NewGraphDriver builds a driver that cyclically executes an arbitrary
// finite rDAG, restarting its roots restartWeight cycles after each full
// traversal. It supports irregular defense rDAGs beyond the template
// space.
func NewGraphDriver(g *Graph, restartWeight uint64) (*rdag.GraphDriver, error) {
	return rdag.NewGraphDriver(g, restartWeight)
}

// DefaultTemplateSpace returns the paper's Figure 7 search space: 1/2/4/8
// parallel sequences and uniform edge weights of 0..400 DRAM cycles.
func DefaultTemplateSpace(banks int) TemplateSpace {
	return rdag.DefaultSpace(banks)
}
