package dagguise_test

import (
	"fmt"

	"dagguise"
)

// ExampleNewSystem shows the smallest complete protection setup: a victim
// trace behind a DAGguise shaper next to an unprotected co-runner.
func ExampleNewSystem() {
	victimTrace, err := dagguise.DocDistTrace(42, dagguise.DefaultDocDistConfig())
	if err != nil {
		panic(err)
	}
	profile, _ := dagguise.WorkloadByName("xz")
	coRunner, _ := dagguise.NewWorkloadSource(profile, 7)

	sys, err := dagguise.NewSystem(dagguise.DefaultConfig(2, dagguise.DAGguise), []dagguise.CoreSpec{
		{
			Name:      "victim",
			Source:    dagguise.LoopTrace(victimTrace),
			Protected: true,
			Defense:   dagguise.Template{Sequences: 8, Weight: 150, WriteRatio: 0.25, Banks: 8},
		},
		{Name: "xz", Source: coRunner},
	})
	if err != nil {
		panic(err)
	}
	res := sys.Measure(10_000, 100_000)
	fmt.Println(len(res.Cores), "cores measured,", res.Cores[0].ShaperForwarded > 0)
	// Output: 2 cores measured, true
}

// ExampleMeasureLeakage quantifies a scheme's side-channel leakage for a
// one-bit secret: DAGguise measures exactly zero.
func ExampleMeasureLeakage() {
	secret0 := dagguise.AttackPattern{Gaps: []uint64{100}, Banks: []int{0, 1}}
	secret1 := dagguise.AttackPattern{Gaps: []uint64{200}, Banks: []int{0, 1}}
	probe := dagguise.AttackProbe{Bank: 0, Gap: 120}

	res, err := dagguise.MeasureLeakage(dagguise.DAGguise, dagguise.Template{},
		dagguise.CamouflageDistribution{}, secret0, secret1, probe, 100, 1)
	if err != nil {
		panic(err)
	}
	fmt.Printf("leakage: %.3f bits/probe\n", res.SequenceMI)
	// Output: leakage: 0.000 bits/probe
}

// ExampleVerifySecurity runs the formal indistinguishability proof.
func ExampleVerifySecurity() {
	rep, err := dagguise.VerifySecurity(dagguise.DefaultVerifyModel(), 2)
	if err != nil {
		panic(err)
	}
	fmt.Println("proven:", rep.Holds())
	// Output: proven: true
}

// ExampleEstimateArea reproduces the Table 3 hardware cost.
func ExampleEstimateArea() {
	res, err := dagguise.EstimateArea(dagguise.Table3AreaConfig())
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d gates, %.5f mm^2 total\n", res.ComputationGates, res.TotalAreaMM2)
	// Output: 13424 gates, 0.03727 mm^2 total
}

// ExampleTemplate_Unroll materialises a Figure 6 defense rDAG as a graph.
func ExampleTemplate_Unroll() {
	tpl := dagguise.Template{Sequences: 2, Weight: 600, Banks: 8}
	g, err := tpl.Unroll(3)
	if err != nil {
		panic(err)
	}
	fmt.Println(len(g.Vertices), "vertices,", len(g.Edges), "edges")
	// Output: 6 vertices, 4 edges
}
