package dagguise

import (
	"dagguise/internal/area"
	"dagguise/internal/profile"
)

// ProfileOptions tunes the offline profiling sweep (§4.3).
type ProfileOptions = profile.Options

// ProfilePoint is one candidate defense rDAG's measurement (a point in
// Figure 7).
type ProfilePoint = profile.Point

// ProfileResult is the outcome of a profiling sweep, including the
// selected knee-point defense rDAG.
type ProfileResult = profile.Result

// ProfileVictim sweeps the template search space, running the victim alone
// under each candidate defense rDAG, and selects a cost-effective defense
// at the knee of the IPC-versus-allocated-bandwidth curve. mkVictim must
// return a fresh trace source per call.
func ProfileVictim(mkVictim func() TraceSource, space TemplateSpace, opts ProfileOptions) (*ProfileResult, error) {
	return profile.Sweep(mkVictim, space, opts)
}

// DefaultProfileOptions returns sweep windows adequate for the bundled
// victims.
func DefaultProfileOptions() ProfileOptions { return profile.DefaultOptions() }

// AreaConfig parameterises the shaper hardware cost model.
type AreaConfig = area.Config

// AreaResult is the Table 3 breakdown: computation-logic gates and private
// queue SRAM with their 45nm areas.
type AreaResult = area.Result

// Table3AreaConfig returns the configuration evaluated in the paper: eight
// shapers, eight banks each, 16-bit weights, eight 72-byte queue entries.
func Table3AreaConfig() AreaConfig { return area.Table3Config() }

// EstimateArea computes the DAGguise hardware footprint.
func EstimateArea(cfg AreaConfig) (AreaResult, error) { return area.Estimate(cfg) }
